//! The index-based scheme family: CI (§5), PI (§6), HY (§6) and PI* (§6).
//!
//! All four share the same skeleton — partition, pre-compute, build
//! `Fh`/`Fl`/`Fi`/`Fd`, derive a fixed plan, then answer queries in 3–4
//! PIR rounds — and differ only in what the network index stores:
//!
//! | scheme | index record            | rounds | data pages/round 3–4        |
//! |--------|-------------------------|--------|-----------------------------|
//! | CI     | region sets `S_ij`      | 4      | `m + 2` from `Fd`           |
//! | PI     | subgraphs `G_ij`        | 3      | `h` from `Fi` + 2 from `Fd` |
//! | PI*    | subgraphs, k pages/reg  | 3      | `h` + `2k`                  |
//! | HY     | mixed, one file `Fi|Fd` | 4      | `r` then `q4` (combined)    |

use crate::augment::AugGraph;
use crate::config::BuildConfig;
use crate::error::CoreError;
use crate::files::fd::{build_fd, decode_region, NoExtra, RecordFormat};
use crate::files::fh::Header;
use crate::files::fi::FiBuilder;
use crate::files::{fl, unseal_page, PAGE_CRC_BYTES};
use crate::plan::{PlanFile, QueryPlan, RoundSpec};
use crate::precompute::{precompute, PrecomputeOptions, Precomputed};
use crate::records::{literal_size, IndexPayload};
use crate::Result;
use privpath_graph::network::RoadNetwork;
use privpath_partition::{compute_borders, partition_packed, partition_plain, Partition};
use privpath_pir::{FileId, PirServer, Transport};
use privpath_storage::MemFile;

/// Which payload the index stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexFlavor {
    /// Region sets (CI).
    Sets,
    /// Subgraphs (PI / PI*).
    Graphs,
    /// Mixed: sets up to a cardinality threshold, subgraphs beyond (HY).
    Hybrid {
        /// Replace `S_ij` with `G_ij` when `|S_ij| > threshold`.
        threshold: usize,
    },
}

/// Built database handles for an index-family scheme.
pub struct IndexScheme {
    /// Scheme discriminator byte stored in the header.
    pub scheme_byte: u8,
    /// The flavor.
    pub flavor: IndexFlavor,
    /// Header (also kept parsed for inspection).
    pub header: Header,
    /// PIR file ids.
    pub header_file: FileId,
    /// Look-up file id.
    pub lookup_file: FileId,
    /// Index file id (for HY this is the combined `Fi|Fd` file).
    pub index_file: FileId,
    /// Region-data file id (same as `index_file` for HY).
    pub data_file: FileId,
}

/// Wall-clock seconds per offline build stage — the `build_breakdown_ms`
/// the perf baseline records. Stages not applicable to a scheme stay `0.0`
/// (e.g. LM/AF have no border computation; for them `precompute` covers
/// their own substrate: landmark vectors / arc flags).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageBreakdown {
    /// KD-tree partitioning (§5.1/§5.6).
    pub partition_s: f64,
    /// Border-node computation + augmented-graph assembly (§5.2).
    pub borders_s: f64,
    /// The heavy pre-computation: border Dijkstras and set sweeps (§5.2/§6),
    /// or the LM/AF substrate (landmark vectors, arc flags).
    pub precompute_s: f64,
    /// File formation (`Fd`/`Fi`/`Fl`/headers) and server registration.
    pub files_s: f64,
    /// Query-plan derivation (LM/AF probe loops; HY threshold auto-tune).
    pub plan_s: f64,
}

impl StageBreakdown {
    /// Sum of all stages.
    pub fn total_s(&self) -> f64 {
        self.partition_s + self.borders_s + self.precompute_s + self.files_s + self.plan_s
    }
}

/// Statistics produced during the build (for the experiment harness).
#[derive(Debug, Clone, Default)]
pub struct BuildStats {
    /// Number of regions.
    pub regions: u32,
    /// Number of border nodes.
    pub borders: u32,
    /// `m` — max region-set cardinality.
    pub m: u32,
    /// Max pages spanned by an index record.
    pub index_span: u32,
    /// Fd space utilization (Figure 8(a)).
    pub fd_utilization: f64,
    /// Page counts: (Fl, Fi, Fd).
    pub pages: (u32, u32, u32),
    /// `|S_ij|` histogram (Figure 10(a)).
    pub s_histogram: Vec<(usize, usize)>,
    /// Per-stage build wall-clock breakdown.
    pub stage_s: StageBreakdown,
}

fn edge_triples(net: &RoadNetwork, edges: &[u32]) -> Vec<(u32, u32, u32)> {
    let mut v: Vec<(u32, u32, u32)> = edges
        .iter()
        .map(|&e| {
            let (a, b) = net.edge_endpoints(e);
            (a, b, net.edge_weight(e))
        })
        .collect();
    v.sort_unstable();
    v
}

/// Estimates the uncompressed index size for a HY threshold, used for
/// auto-tuning: pick the smallest threshold whose index fits the PIR limit.
pub fn estimate_hybrid_index_bytes(_net: &RoadNetwork, pre: &Precomputed, threshold: usize) -> u64 {
    let mut total = 0u64;
    let r = pre.num_regions as usize;
    for i in 0..r {
        for j in 0..r {
            let s = &pre.s_sets[i * r + j];
            total += if s.len() > threshold {
                literal_size(&IndexPayload::Edges(vec![
                    (0, 0, 0);
                    pre.g_sets[i * r + j].len()
                ])) as u64
            } else {
                literal_size(&IndexPayload::Regions(s.clone())) as u64
            };
        }
    }
    total
}

/// Picks the smallest HY threshold whose estimated index stays within
/// `limit_bytes` (Figure 10(b): "the best threshold value is the smallest for
/// which the network index file does not exceed the maximum size supported").
pub fn auto_hybrid_threshold(net: &RoadNetwork, pre: &Precomputed, limit_bytes: u64) -> usize {
    // Estimates are monotone decreasing in the threshold; binary search.
    let (mut lo, mut hi) = (0usize, pre.m + 1);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if estimate_hybrid_index_bytes(net, pre, mid) <= limit_bytes {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo.min(pre.m)
}

/// Builds an index-family database and registers its files with `server`.
pub fn build(
    net: &RoadNetwork,
    flavor: IndexFlavor,
    scheme_byte: u8,
    cfg: &BuildConfig,
    server: &mut PirServer,
) -> Result<(IndexScheme, BuildStats)> {
    use std::time::Instant;
    let mut stage_s = StageBreakdown::default();
    let fmt = RecordFormat::default();
    let page_size = cfg.spec.page_size;
    let cluster = cfg.cluster_pages.max(1);
    // region capacity: cluster pages of payload, minus the 4-byte region
    // stream header
    let capacity = cluster as usize * (page_size - PAGE_CRC_BYTES) - 4;
    let bytes_of = |u: u32| fmt.node_bytes(net.degree(u));
    let t0 = Instant::now();
    let partition: Partition = if cfg.packed_partition {
        partition_packed(net, capacity, &bytes_of)
    } else {
        partition_plain(net, capacity, &bytes_of)
    };
    stage_s.partition_s = t0.elapsed().as_secs_f64();
    let r = partition.num_regions();

    let t0 = Instant::now();
    let borders = compute_borders(net, &partition.tree);
    let aug = AugGraph::build(net, &borders, &partition.region_of_node);
    stage_s.borders_s = t0.elapsed().as_secs_f64();
    let need_g = !matches!(flavor, IndexFlavor::Sets);
    let t0 = Instant::now();
    let pre = precompute(
        &aug,
        &borders,
        r,
        net.num_arcs(),
        &PrecomputeOptions {
            compute_g: need_g,
            threads: cfg.threads,
            ..PrecomputeOptions::default()
        },
    );
    stage_s.precompute_s = t0.elapsed().as_secs_f64();

    // HY: resolve the threshold now (auto = smallest fitting the PIR limit).
    let t0 = Instant::now();
    let flavor = match flavor {
        IndexFlavor::Hybrid {
            threshold: usize::MAX,
        } => IndexFlavor::Hybrid {
            threshold: auto_hybrid_threshold(net, &pre, cfg.spec.max_file_bytes() / 2),
        },
        f => f,
    };
    stage_s.plan_s = t0.elapsed().as_secs_f64();

    // m for the compression bound: CI uses the global m; HY uses the max
    // cardinality among *kept* sets; PI has no region sets.
    let m_bound = match flavor {
        IndexFlavor::Sets => pre.m,
        IndexFlavor::Hybrid { threshold } => pre
            .s_sets
            .iter()
            .map(|s| s.len())
            .filter(|&l| l <= threshold)
            .max()
            .unwrap_or(0),
        IndexFlavor::Graphs => 0,
    };

    // ---- Fd ----
    let t0 = Instant::now();
    let fd = build_fd(net, &partition, &fmt, &NoExtra, cluster, page_size)?;

    // ---- Fi ----
    let mut fi_builder = FiBuilder::new(page_size, m_bound, cfg.compress_index);
    let mut fl_entries = vec![0u32; r as usize * r as usize];
    let mut max_set_span = 1u32;
    let mut max_graph_span = 1u32;
    for i in 0..r {
        for j in 0..r {
            let idx = fl::entry_index(i, j, r);
            let s_set = pre.s(i, j);
            let use_graph = match flavor {
                IndexFlavor::Sets => false,
                IndexFlavor::Graphs => true,
                IndexFlavor::Hybrid { threshold } => s_set.len() > threshold,
            };
            let payload = if use_graph {
                IndexPayload::Edges(edge_triples(net, pre.g(i, j)))
            } else {
                IndexPayload::Regions(s_set.to_vec())
            };
            let loc = fi_builder.add(i, j, payload);
            fl_entries[idx] = loc.page;
            if use_graph {
                max_graph_span = max_graph_span.max(loc.span);
            } else {
                max_set_span = max_set_span.max(loc.span);
            }
        }
    }
    let (fi, _) = fi_builder.finish();
    let fl_file = fl::build_fl(&fl_entries, page_size);

    // ---- plan + header ----
    let is_hybrid = matches!(flavor, IndexFlavor::Hybrid { .. });
    let (index_span, plan, hy_round4, combined_fd_offset, index_file_mem, data_file_mem) =
        match flavor {
            IndexFlavor::Sets => {
                let span = max_set_span;
                let plan = QueryPlan {
                    rounds: vec![
                        RoundSpec::one(PlanFile::Header, 0),
                        RoundSpec::one(PlanFile::Lookup, 1),
                        RoundSpec::one(PlanFile::Index, span),
                        RoundSpec::one(PlanFile::Data, (pre.m as u32 + 2) * u32::from(cluster)),
                    ],
                };
                (span, plan, 0u32, 0u32, Some(fi), Some(fd))
            }
            IndexFlavor::Graphs => {
                let h = max_graph_span;
                let plan = QueryPlan {
                    rounds: vec![
                        RoundSpec::one(PlanFile::Header, 0),
                        RoundSpec::one(PlanFile::Lookup, 1),
                        RoundSpec {
                            steps: vec![
                                (PlanFile::Index, h),
                                (PlanFile::Data, 2 * u32::from(cluster)),
                            ],
                        },
                    ],
                };
                (h, plan, 0, 0, Some(fi), Some(fd))
            }
            IndexFlavor::Hybrid { .. } => {
                // one physical file: Fi section followed by Fd section, so the
                // adversary cannot tell set queries from subgraph queries (§6)
                let r_span = max_set_span;
                let fd_offset = fi.num_pages_mem();
                let mut combined = fi;
                combined.concat(&fd);
                // Round 4 has a fixed two-phase shape so even the *wire
                // exchange* stream is query-independent: first exactly
                // `hy_cont` single-page continuation exchanges (the
                // data-dependent record-continuation walk, padded with dummy
                // singles), then one batch of exactly `(m + 2) · cluster`
                // pages (region groups padded with dummies). `hy_cont` is
                // the worst-case continuation need — the widest subgraph
                // record minus the `r_span` window round 3 already fetched —
                // and the client recovers it from the header as
                // `hy_round4 - (m_regions + 2) · cluster_pages`.
                let hy_cont = max_graph_span.saturating_sub(r_span);
                let q4 = hy_cont + (m_bound as u32 + 2) * u32::from(cluster);
                let plan = QueryPlan {
                    rounds: vec![
                        RoundSpec::one(PlanFile::Header, 0),
                        RoundSpec::one(PlanFile::Lookup, 1),
                        RoundSpec::one(PlanFile::Combined, r_span),
                        RoundSpec::one(PlanFile::Combined, q4),
                    ],
                };
                (r_span, plan, q4, fd_offset, Some(combined), None)
            }
        };

    let index_mem = index_file_mem.expect("index file always built");
    let fi_pages = if is_hybrid {
        combined_fd_offset
    } else {
        index_mem_pages(&index_mem)
    };
    let fd_pages = match &data_file_mem {
        Some(fd) => index_mem_pages(fd),
        None => index_mem_pages(&index_mem) - combined_fd_offset,
    };

    // region -> starting page (absolute within its file)
    let region_page: Vec<u32> = (0..r)
        .map(|reg| {
            let base = u32::from(reg) * u32::from(cluster);
            if is_hybrid {
                combined_fd_offset + base
            } else {
                base
            }
        })
        .collect();

    let header = Header {
        scheme: scheme_byte,
        page_size: page_size as u32,
        num_regions: r,
        cluster_pages: cluster,
        record_format: fmt,
        m_regions: m_bound as u16,
        index_span: index_span as u16,
        hy_round4,
        combined_fd_offset,
        fl_pages: index_mem_pages(&fl_file),
        fi_pages,
        fd_pages,
        tree: partition.tree.clone(),
        region_page,
        plan,
    };
    let header_mem = header.to_file(page_size);

    let header_file = server.add_file("Fh", header_mem, privpath_pir::PirMode::CostOnly)?;
    let lookup_file = server.add_file("Fl", fl_file, cfg.pir_mode.clone())?;
    let index_file = server.add_file(
        if is_hybrid { "Fi|Fd" } else { "Fi" },
        index_mem,
        cfg.pir_mode.clone(),
    )?;
    let data_file = match data_file_mem {
        Some(fd) => server.add_file("Fd", fd, cfg.pir_mode.clone())?,
        None => index_file,
    };
    stage_s.files_s = t0.elapsed().as_secs_f64();

    let stats = BuildStats {
        regions: u32::from(r),
        borders: borders.len() as u32,
        m: pre.m as u32,
        index_span: max_set_span.max(max_graph_span),
        fd_utilization: partition.utilization(),
        pages: (header.fl_pages, header.fi_pages, header.fd_pages),
        s_histogram: pre.s_cardinality_histogram(),
        stage_s,
    };

    Ok((
        IndexScheme {
            scheme_byte,
            flavor,
            header,
            header_file,
            lookup_file,
            index_file,
            data_file,
        },
        stats,
    ))
}

fn index_mem_pages(f: &MemFile) -> u32 {
    use privpath_storage::PagedFile;
    f.num_pages()
}

/// Extension used above to get page counts before moving the MemFile.
trait MemFileExt {
    fn num_pages_mem(&self) -> u32;
}
impl MemFileExt for MemFile {
    fn num_pages_mem(&self) -> u32 {
        use privpath_storage::PagedFile;
        self.num_pages()
    }
}

/// Unseals a batch's region page groups (`cluster` pages each, concatenated
/// through `region_bytes`) and folds each decoded region into the subgraph
/// arena. Works straight off the session arena slices — no per-page
/// allocation.
fn decode_region_groups(
    pages: &[privpath_storage::PageBuf],
    cluster: usize,
    region_bytes: &mut Vec<u8>,
    fmt: &RecordFormat,
    sub: &mut crate::subgraph::ClientSubgraph,
) -> Result<()> {
    for group in pages.chunks(cluster) {
        region_bytes.clear();
        for page in group {
            region_bytes.extend_from_slice(unseal_page(page)?);
        }
        sub.add_region(&decode_region(region_bytes, fmt)?);
    }
    Ok(())
}

/// Executes one private query against an index-family database. `link` is
/// the session's [`Transport`] — the shared in-process server or a wire
/// channel; all mutation happens in `ctx`.
///
/// Every protocol round assembles its full page list — real fetches and
/// dummies alike — *before* issuing it, then executes it as one
/// [`privpath_pir::PirSession::run_round`] batch. The paper's protocol
/// already reads this
/// way (the client knows a round's pages before requesting any of them;
/// §5.4, §6), so batching changes the server's work per round, not the
/// protocol: the trace and meter are bit-identical to per-fetch execution.
pub fn query(
    scheme: &IndexScheme,
    link: &mut dyn Transport,
    ctx: &mut crate::engine::QueryCtx,
    s: privpath_graph::types::Point,
    t: privpath_graph::types::Point,
) -> Result<crate::engine::QueryOutput> {
    use rand::Rng;
    use std::collections::HashMap;
    use std::time::Instant;

    let crate::engine::QueryCtx {
        pir,
        rng,
        sub,
        scratch,
        reqs,
        region_bytes,
    } = ctx;
    pir.reset_query();
    sub.clear();

    // Round 1: download the header in full.
    pir.begin_round(link)?;
    let raw = pir.download_full(link, scheme.header_file)?;
    let page_size = link.spec().page_size;
    let t0 = Instant::now();
    let payload = crate::files::unseal_download(&raw, page_size)?;
    let header = Header::parse(&payload)?;
    let rs = header.tree.region_of(s);
    let rt = header.tree.region_of(t);
    let mut client_s = t0.elapsed().as_secs_f64();

    // Round 2: one look-up page (a batch of one).
    let idx = fl::entry_index(rs, rt, header.num_regions);
    let fl_page = fl::page_of_entry(idx, header.page_size as usize);
    let fl_payload = {
        let pages = pir.run_round(link, &[(scheme.lookup_file, fl_page)])?;
        unseal_page(&pages[0])?.to_vec()
    };
    let fi_start = fl::read_entry(&fl_payload, idx, header.page_size as usize)?;

    // Round 3: the index window, assembled up front and issued as one batch.
    let span = u32::from(header.index_span.max(1));
    let window_start = fi_start.min(header.fi_pages.saturating_sub(span));
    reqs.clear();
    reqs.extend((window_start..window_start + span).map(|p| (scheme.index_file, p)));
    let mut fetched: HashMap<u32, Vec<u8>> = HashMap::new();
    {
        let pages = pir.run_round(link, reqs)?;
        for (&(_, p), page) in reqs.iter().zip(pages) {
            fetched.insert(p, unseal_page(page)?.to_vec());
        }
    }

    let cluster = u32::from(header.cluster_pages.max(1));
    let answer_payload: Option<IndexPayload>;

    match scheme.flavor {
        IndexFlavor::Graphs => {
            // Round 3 continues: both region page groups in one batch.
            reqs.clear();
            for &reg in &[rs, rt] {
                let base = header.region_page[reg as usize];
                reqs.extend((0..cluster).map(|c| (scheme.data_file, base + c)));
            }
            {
                let pages = pir.fetch_batch(link, reqs)?;
                let t1 = Instant::now();
                decode_region_groups(
                    pages,
                    cluster as usize,
                    region_bytes,
                    &header.record_format,
                    sub,
                )?;
                client_s += t1.elapsed().as_secs_f64();
            }
            let t1 = Instant::now();
            let getter = |p: u32| -> Result<Vec<u8>> {
                fetched
                    .get(&p)
                    .cloned()
                    .ok_or_else(|| CoreError::Query(format!("index page {p} not in window")))
            };
            answer_payload = Some(crate::files::fi::decode_entry(&getter, fi_start, rs, rt)?);
            client_s += t1.elapsed().as_secs_f64();
        }
        IndexFlavor::Sets => {
            let t1 = Instant::now();
            let getter = |p: u32| -> Result<Vec<u8>> {
                fetched
                    .get(&p)
                    .cloned()
                    .ok_or_else(|| CoreError::Query(format!("index page {p} not in window")))
            };
            let decoded = crate::files::fi::decode_entry(&getter, fi_start, rs, rt)?;
            client_s += t1.elapsed().as_secs_f64();
            let regions = match &decoded {
                IndexPayload::Regions(v) => v.clone(),
                IndexPayload::Edges(_) => {
                    return Err(CoreError::Query("CI index holds a subgraph record".into()))
                }
            };
            // Round 4: m + 2 region page groups (real ones first, dummies
            // after), the whole list assembled before the round is issued.
            let budget = (u32::from(header.m_regions) + 2) * cluster;
            reqs.clear();
            let real_groups = 2 + regions.len();
            for reg in [rs, rt].into_iter().chain(regions.iter().copied()) {
                let base = header.region_page[reg as usize];
                reqs.extend((0..cluster).map(|c| (scheme.data_file, base + c)));
            }
            while (reqs.len() as u32) < budget {
                let dummy = rng.gen_range(0..header.fd_pages.max(1));
                reqs.push((scheme.data_file, dummy));
            }
            {
                let pages = pir.run_round(link, reqs)?;
                let real = real_groups * cluster as usize;
                let t1 = Instant::now();
                decode_region_groups(
                    &pages[..real],
                    cluster as usize,
                    region_bytes,
                    &header.record_format,
                    sub,
                )?;
                // dummy pages are discarded, but their checksums are still
                // verified — a tampering server cannot hide in the padding
                for page in &pages[real..] {
                    unseal_page(page)?;
                }
                client_s += t1.elapsed().as_secs_f64();
            }
            answer_payload = Some(decoded);
        }
        IndexFlavor::Hybrid { .. } => {
            // Round 4 has a fixed two-phase shape (see the plan derivation
            // in `build`): exactly `hy_cont` single-page continuation
            // exchanges, then one batch of exactly `(m + 2) · cluster`
            // pages — so the number and size of every wire exchange is
            // query-independent, not just the fetch totals. All fetches go
            // against the combined file.
            pir.begin_round(link)?;
            let q4 = header.hy_round4;
            let batch_budget = (u32::from(header.m_regions) + 2) * cluster;
            let hy_cont = q4.checked_sub(batch_budget).ok_or_else(|| {
                CoreError::Query(format!(
                    "header hy_round4 {q4} smaller than the fixed batch of {batch_budget}"
                ))
            })?;
            let total_pages = header.fi_pages + header.fd_pages;
            let mut used = 0u32;
            // Phase one — the data-dependent continuation walk. The decoder
            // cannot hold a mutable borrow of the session, so decode against
            // what we have and fetch missing continuation pages between
            // attempts (each attempt discovers one more page).
            let mut all: HashMap<u32, Vec<u8>> = fetched.clone();
            let decoded = loop {
                let getter = |p: u32| -> Result<Vec<u8>> {
                    all.get(&p)
                        .cloned()
                        .ok_or_else(|| CoreError::Query(format!("missing page {p}")))
                };
                match crate::files::fi::decode_entry(&getter, fi_start, rs, rt) {
                    Ok(v) => break v,
                    Err(CoreError::Query(msg)) if msg.starts_with("missing page") => {
                        let p: u32 = msg["missing page ".len()..]
                            .parse()
                            .map_err(|_| CoreError::Query(msg.clone()))?;
                        if all.contains_key(&p) {
                            return Err(CoreError::Query(format!("page {p} repeatedly missing")));
                        }
                        if used >= hy_cont {
                            return Err(CoreError::Query(format!(
                                "record needs more than the {hy_cont} continuation pages the \
                                 plan allows"
                            )));
                        }
                        let payload = {
                            let pages = pir.fetch_batch(link, &[(scheme.index_file, p)])?;
                            unseal_page(&pages[0])?.to_vec()
                        };
                        used += 1;
                        all.insert(p, payload);
                    }
                    Err(e) => return Err(e),
                }
            };
            // Pad the continuation phase to its fixed length with dummy
            // single-page exchanges (checksum-verified like everything else).
            while used < hy_cont {
                let dummy = rng.gen_range(0..total_pages.max(1));
                let pages = pir.fetch_batch(link, &[(scheme.index_file, dummy)])?;
                unseal_page(&pages[0])?;
                used += 1;
            }
            // Phase two — region pages for rs, rt and (for set records) the
            // set regions, then dummies up to the fixed batch budget: one
            // batch exchange.
            let mut to_fetch: Vec<u16> = vec![rs, rt];
            if let IndexPayload::Regions(v) = &decoded {
                to_fetch.extend(v.iter().copied());
            }
            let real_groups = to_fetch.len();
            reqs.clear();
            for reg in to_fetch {
                let base = header.region_page[reg as usize];
                reqs.extend((0..cluster).map(|c| (scheme.index_file, base + c)));
            }
            while (reqs.len() as u32) < batch_budget {
                let dummy = rng.gen_range(0..total_pages.max(1));
                reqs.push((scheme.index_file, dummy));
            }
            {
                let pages = pir.fetch_batch(link, reqs)?;
                let real = real_groups * cluster as usize;
                let t1 = Instant::now();
                decode_region_groups(
                    &pages[..real],
                    cluster as usize,
                    region_bytes,
                    &header.record_format,
                    sub,
                )?;
                // dummy padding is checksum-verified like the real pages
                for page in &pages[real..] {
                    unseal_page(page)?;
                }
                client_s += t1.elapsed().as_secs_f64();
            }
            answer_payload = Some(decoded);
        }
    }

    // Assemble and solve (allocation-free in steady state: the CSR arena and
    // Dijkstra scratch are reused across the session's queries).
    let t1 = Instant::now();
    if let Some(IndexPayload::Edges(triples)) = &answer_payload {
        sub.add_edges(triples);
    }
    let s_node = sub
        .snap(rs, s)
        .ok_or_else(|| CoreError::Query(format!("source region {rs} has no nodes")))?;
    let t_node = sub
        .snap(rt, t)
        .ok_or_else(|| CoreError::Query(format!("target region {rt} has no nodes")))?;
    let cost = sub.shortest_path_in(scratch, s_node, t_node);
    client_s += t1.elapsed().as_secs_f64();
    pir.add_client_compute(client_s);

    let (cost, path) = match cost {
        Some(c) => (Some(c), scratch.path.clone()),
        None => (None, Vec::new()),
    };
    Ok(crate::engine::QueryOutput {
        answer: crate::engine::PathAnswer {
            cost,
            path_nodes: path,
            src_node: s_node,
            dst_node: t_node,
        },
        meter: pir.meter.clone(),
        trace: pir.trace.clone(),
        plan_violation: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use privpath_graph::gen::{road_like, RoadGenConfig};

    #[test]
    fn edge_triples_are_sorted_and_faithful() {
        let net = road_like(&RoadGenConfig {
            nodes: 50,
            seed: 1,
            ..Default::default()
        });
        let ids: Vec<u32> = (0..net.num_arcs() as u32).step_by(3).collect();
        let triples = edge_triples(&net, &ids);
        assert_eq!(triples.len(), ids.len());
        assert!(triples.windows(2).all(|w| w[0] <= w[1]));
        for &(a, b, w) in &triples {
            let e = ids
                .iter()
                .copied()
                .find(|&e| net.edge_endpoints(e) == (a, b) && net.edge_weight(e) == w);
            assert!(e.is_some(), "triple ({a},{b},{w}) not among source arcs");
        }
    }

    #[test]
    fn hybrid_threshold_monotone_and_auto_picks_smallest() {
        let net = road_like(&RoadGenConfig {
            nodes: 400,
            seed: 2,
            ..Default::default()
        });
        let cap = 1000;
        let fmt = RecordFormat::default();
        let p = partition_packed(&net, cap, &|u| fmt.node_bytes(net.degree(u)));
        let borders = compute_borders(&net, &p.tree);
        let aug = AugGraph::build(&net, &borders, &p.region_of_node);
        let pre = precompute(
            &aug,
            &borders,
            p.num_regions(),
            net.num_arcs(),
            &PrecomputeOptions::default(),
        );
        // size estimates shrink as the threshold rises (fewer subgraphs)
        let sizes: Vec<u64> = (0..=pre.m)
            .map(|th| estimate_hybrid_index_bytes(&net, &pre, th))
            .collect();
        assert!(
            sizes.windows(2).all(|w| w[0] >= w[1]),
            "estimate must be monotone"
        );
        // auto threshold honours a generous limit with threshold 0 (pure PI)
        let big_limit = sizes[0] + 1;
        assert_eq!(auto_hybrid_threshold(&net, &pre, big_limit), 0);
        // and a tight limit forces a high threshold
        let tight = *sizes.last().unwrap();
        let th = auto_hybrid_threshold(&net, &pre, tight);
        assert!(estimate_hybrid_index_bytes(&net, &pre, th) <= tight.max(1));
    }

    #[test]
    fn build_stats_are_populated() {
        let net = road_like(&RoadGenConfig {
            nodes: 300,
            seed: 3,
            ..Default::default()
        });
        let mut cfg = crate::config::BuildConfig::default();
        cfg.spec.page_size = 512;
        let mut server = PirServer::new(cfg.spec.clone());
        let (scheme, stats) = build(&net, IndexFlavor::Sets, 1, &cfg, &mut server).unwrap();
        assert!(stats.regions > 1);
        assert!(stats.borders > 0);
        assert!(stats.fd_utilization > 0.5);
        assert_eq!(stats.pages.2, scheme.header.fd_pages);
        let total: usize = stats.s_histogram.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, (stats.regions * stats.regions) as usize);
    }
}
