//! The AF baseline (§4): arc-flag-pruned Dijkstra with on-demand region
//! fetching.
//!
//! "Arc-flag requires partitioning the road network into regions. ...
//! processing a shortest path query only considers edges whose bit for the
//! destination region is 1. ... we allocate for each region a fixed number
//! of pages, to be retrieved together during query processing."

use crate::config::BuildConfig;
use crate::engine::{PathAnswer, QueryOutput};
use crate::files::fd::{build_fd, decode_region, NodeExtra, RecordFormat, RegionData};
use crate::files::fh::Header;
use crate::files::{unseal_page, PAGE_CRC_BYTES};
use crate::plan::{PlanFile, QueryPlan, RoundSpec};
use crate::schemes::index_scheme::{BuildStats, StageBreakdown};
use crate::schemes::plan_probe::{probe_max, sample_pairs, ProbePairs, ProbeSearch};
use crate::subgraph::search_af;
use crate::Result;
use privpath_graph::arcflag::ArcFlags;
use privpath_graph::network::RoadNetwork;
use privpath_graph::types::{NodeId, Point};
use privpath_partition::partition_into;
use privpath_pir::{FileId, PirMode, PirServer, Transport};
use privpath_storage::{MemFile, PagedFile};
use rand::Rng;
use std::sync::Arc;

pub use crate::subgraph::flag_set;

/// Built AF database handles.
pub struct AfScheme {
    /// The public header.
    pub header: Header,
    /// Header file id.
    pub header_file: FileId,
    /// Region data file id.
    pub data_file: FileId,
    /// Regions any query fetches (plan budget, each `pages_per_region` pages).
    pub max_regions: u32,
    /// Pages per region.
    pub pages_per_region: u32,
}

struct AfExtra<'a> {
    flags: &'a ArcFlags,
}

impl NodeExtra for AfExtra<'_> {
    fn edge_flags(&self, edge: u32) -> Vec<u8> {
        let bits = self.flags.edge_flags(edge);
        let n = self.flags.flag_bytes();
        let mut out = vec![0u8; n];
        for r in 0..self.flags.num_regions() {
            if bits.get(r) {
                out[r / 8] |= 1 << (r % 8);
            }
        }
        out
    }
}

/// The original `HashMap`-based client search, retained verbatim as the
/// behavioural reference for the CSR-arena [`crate::subgraph::search_af`]
/// that replaced it on the query path. The differential property suite
/// (`tests/leakage.rs`) asserts both return identical answers, snapped
/// nodes, paths and fetch counts on identical inputs.
pub mod reference {
    use super::*;
    use crate::error::CoreError;
    use crate::files::fd::NodeData;
    use privpath_graph::types::Dist;
    use std::collections::HashMap;

    /// What the reference search produced. `regions_fetched` counts region
    /// fetches including the two initial host regions.
    pub struct SearchOutcome {
        /// Path cost, or `None` if the destination is unreachable.
        pub cost: Option<Dist>,
        /// Node sequence of the found path (empty when unreachable).
        pub path: Vec<NodeId>,
        /// Node the source point snapped to.
        pub s_node: NodeId,
        /// Node the destination point snapped to.
        pub t_node: NodeId,
        /// Region fetches issued.
        pub regions_fetched: u32,
    }

    /// Flag-pruned Dijkstra with on-demand region loading. `fetch(region)`
    /// retrieves all of a region's pages (one protocol round).
    pub fn af_search(
        rs: u16,
        rt: u16,
        s: Point,
        t: Point,
        fetch: &mut dyn FnMut(u16) -> Result<RegionData>,
    ) -> Result<SearchOutcome> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let mut known: HashMap<NodeId, NodeData> = HashMap::new();
        let mut members: HashMap<u16, Vec<NodeId>> = HashMap::new();
        let mut regions_fetched = 0u32;
        let load = |region: u16,
                    known: &mut HashMap<NodeId, NodeData>,
                    members: &mut HashMap<u16, Vec<NodeId>>,
                    count: &mut u32,
                    fetch: &mut dyn FnMut(u16) -> Result<RegionData>|
         -> Result<()> {
            let data = fetch(region)?;
            *count += 1;
            if !members.contains_key(&region) {
                let list = members.entry(region).or_default();
                for n in data.nodes {
                    list.push(n.id);
                    known.insert(n.id, n);
                }
            }
            Ok(())
        };

        load(rs, &mut known, &mut members, &mut regions_fetched, fetch)?;
        load(rt, &mut known, &mut members, &mut regions_fetched, fetch)?;

        let snap = |region: u16,
                    p: Point,
                    known: &HashMap<NodeId, NodeData>,
                    members: &HashMap<u16, Vec<NodeId>>| {
            members.get(&region).and_then(|list| {
                list.iter()
                    .copied()
                    .min_by_key(|id| known[id].pos.dist2(&p))
            })
        };
        let s_node = snap(rs, s, &known, &members)
            .ok_or_else(|| CoreError::Query("empty source region".into()))?;
        let t_node = snap(rt, t, &known, &members)
            .ok_or_else(|| CoreError::Query("empty target region".into()))?;
        if s_node == t_node {
            return Ok(SearchOutcome {
                cost: Some(0),
                path: vec![s_node],
                s_node,
                t_node,
                regions_fetched,
            });
        }

        let goal = rt as usize;
        let mut g: HashMap<NodeId, Dist> = HashMap::new();
        let mut parent: HashMap<NodeId, NodeId> = HashMap::new();
        let mut region_hint: HashMap<NodeId, u16> = HashMap::new();
        let mut heap: BinaryHeap<Reverse<(Dist, NodeId)>> = BinaryHeap::new();
        g.insert(s_node, 0);
        heap.push(Reverse((0, s_node)));
        let mut found = None;

        while let Some(Reverse((gu, u))) = heap.pop() {
            if gu > *g.get(&u).unwrap_or(&Dist::MAX) {
                continue;
            }
            if !known.contains_key(&u) {
                let region = *region_hint
                    .get(&u)
                    .ok_or_else(|| CoreError::Query(format!("no region hint for node {u}")))?;
                load(
                    region,
                    &mut known,
                    &mut members,
                    &mut regions_fetched,
                    fetch,
                )?;
                heap.push(Reverse((gu, u)));
                continue;
            }
            if u == t_node {
                found = Some(gu);
                break; // Dijkstra (no heuristic): first settle is optimal
            }
            let arcs: Vec<(u32, u32, u16, bool)> = known[&u]
                .adj
                .iter()
                .map(|a| (a.to, a.w, a.to_region, flag_set(&a.flags, goal)))
                .collect();
            for (v, w, v_region, ok) in arcs {
                if !ok {
                    continue; // pruned: no shortest path into the target region
                }
                let nd = gu + Dist::from(w);
                if nd < *g.get(&v).unwrap_or(&Dist::MAX) {
                    g.insert(v, nd);
                    parent.insert(v, u);
                    region_hint.insert(v, v_region);
                    heap.push(Reverse((nd, v)));
                }
            }
        }

        let cost = match found {
            Some(c) => c,
            None => {
                return Ok(SearchOutcome {
                    cost: None,
                    path: Vec::new(),
                    s_node,
                    t_node,
                    regions_fetched,
                })
            }
        };
        let mut path = vec![t_node];
        let mut cur = t_node;
        while let Some(&p) = parent.get(&cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Ok(SearchOutcome {
            cost: Some(cost),
            path,
            s_node,
            t_node,
            regions_fetched,
        })
    }
}

fn offline_region(fd: &MemFile, region: u16, ppr: u32, fmt: &RecordFormat) -> Result<RegionData> {
    let mut bytes = Vec::new();
    for c in 0..ppr {
        let page = fd.read_page(u32::from(region) * ppr + c)?;
        bytes.extend_from_slice(unseal_page(&page)?);
    }
    decode_region(&bytes, fmt)
}

/// Builds the AF database.
pub fn build(
    net: &RoadNetwork,
    cfg: &BuildConfig,
    server: &mut PirServer,
) -> Result<(AfScheme, BuildStats)> {
    use std::time::Instant;
    let mut stage_s = StageBreakdown::default();
    let regions = cfg.af_regions.max(2).min(net.num_nodes());
    let flag_bytes = regions.div_ceil(8) as u16;
    let fmt = RecordFormat {
        lm_count: 0,
        with_regions: true,
        flag_bytes,
    };
    let bytes_of = |u: u32| fmt.node_bytes(net.degree(u));
    let t0 = Instant::now();
    let partition = partition_into(net, regions, &bytes_of);
    stage_s.partition_s = t0.elapsed().as_secs_f64();
    let r = partition.num_regions();
    let t0 = Instant::now();
    let flags = ArcFlags::compute(net, &partition.region_of_node, r as usize);
    stage_s.precompute_s = t0.elapsed().as_secs_f64();

    let page_size = cfg.spec.page_size;
    let payload = page_size - PAGE_CRC_BYTES;
    // fixed pages per region: enough for the largest region
    let ppr = partition
        .region_bytes
        .iter()
        .map(|&b| (b + 4).div_ceil(payload))
        .max()
        .unwrap_or(1)
        .max(1) as u32;
    let t0 = Instant::now();
    let fd = build_fd(
        net,
        &partition,
        &fmt,
        &AfExtra { flags: &flags },
        ppr as u16,
        page_size,
    )?;
    stage_s.files_s = t0.elapsed().as_secs_f64();

    // Plan derivation — the same CSR-arena search the online query path
    // uses, over a decode-once region cache, striped across workers with a
    // deterministic max-reduction (see [`crate::schemes::plan_probe`]).
    let t0 = Instant::now();
    let cache: Vec<Arc<RegionData>> = (0..r)
        .map(|reg| offline_region(&fd, reg, ppr, &fmt).map(Arc::new))
        .collect::<Result<_>>()?;
    let n = net.num_nodes() as u32;
    let pairs = if cfg.plan_sample == 0 {
        ProbePairs::Exhaustive
    } else {
        ProbePairs::Sampled(sample_pairs(n, cfg.plan_sample, cfg.seed ^ 0x33aa))
    };
    let mut max_regions = probe_max(
        net,
        &partition.region_of_node,
        &cache,
        ProbeSearch::Af,
        &pairs,
        cfg.resolved_threads(),
    )?
    .max(2);
    if cfg.plan_sample != 0 {
        max_regions = ((f64::from(max_regions) * (1.0 + cfg.plan_margin)).ceil() as u32)
            .min(u32::from(r) + 2);
    }
    drop(cache);
    stage_s.plan_s = t0.elapsed().as_secs_f64();

    let mut rounds = vec![
        RoundSpec::one(PlanFile::Header, 0),
        RoundSpec::one(PlanFile::Data, 2 * ppr),
    ];
    for _ in 0..max_regions.saturating_sub(2) {
        rounds.push(RoundSpec::one(PlanFile::Data, ppr));
    }
    let plan = QueryPlan { rounds };

    let header = Header {
        scheme: crate::engine::SchemeKind::Af.byte(),
        page_size: page_size as u32,
        num_regions: r,
        cluster_pages: ppr as u16,
        record_format: fmt,
        m_regions: 0,
        index_span: 0,
        hy_round4: 0,
        combined_fd_offset: 0,
        fl_pages: 0,
        fi_pages: 0,
        fd_pages: fd.num_pages(),
        tree: partition.tree.clone(),
        region_page: (0..u32::from(r)).map(|x| x * ppr).collect(),
        plan,
    };
    let t0 = Instant::now();
    let header_mem = header.to_file(page_size);
    let header_file = server.add_file("Fh", header_mem, PirMode::CostOnly)?;
    let fd_pages = fd.num_pages();
    let data_file = server.add_file("Fd", fd, cfg.pir_mode.clone())?;
    stage_s.files_s += t0.elapsed().as_secs_f64();

    let stats = BuildStats {
        regions: u32::from(r),
        borders: 0,
        m: 0,
        index_span: 0,
        fd_utilization: partition.region_bytes.iter().sum::<usize>() as f64
            / (fd_pages as f64 * payload as f64),
        pages: (0, 0, fd_pages),
        s_histogram: Vec::new(),
        stage_s,
    };
    Ok((
        AfScheme {
            header,
            header_file,
            data_file,
            max_regions,
            pages_per_region: ppr,
        },
        stats,
    ))
}

/// Executes one private AF query. `link` is the session's transport to the
/// shared page host; all mutation happens in `ctx` — the flag-pruned
/// Dijkstra runs on the session's CSR arena and scratch buffers, so the
/// search itself allocates nothing in steady state.
///
/// Round batching: round two's page list — all `pages_per_region` pages of
/// both host regions — is known before the search starts and is issued as
/// one [`privpath_pir::PirSession::run_round`] batch; every later round
/// fetches one region's page group as a batch, and dummy rounds batch their
/// `pages_per_region` random pages. The trace is event-for-event identical
/// to per-fetch execution.
pub fn query(
    scheme: &AfScheme,
    link: &mut dyn Transport,
    ctx: &mut crate::engine::QueryCtx,
    s: Point,
    t: Point,
) -> Result<QueryOutput> {
    use std::time::Instant;
    let crate::engine::QueryCtx {
        pir,
        rng,
        sub,
        scratch,
        reqs,
        region_bytes,
    } = ctx;
    pir.reset_query();
    sub.clear();

    pir.begin_round(link)?;
    let raw = pir.download_full(link, scheme.header_file)?;
    let page_size = link.spec().page_size;
    let t0 = Instant::now();
    let payload = crate::files::unseal_download(&raw, page_size)?;
    let header = Header::parse(&payload)?;
    let rs = header.tree.region_of(s);
    let rt = header.tree.region_of(t);
    let client_s = t0.elapsed().as_secs_f64();

    let ppr = scheme.pages_per_region;
    // Round 2: both host region page groups, one batch.
    let mut prefetched: std::collections::VecDeque<(u16, Arc<RegionData>)> = {
        reqs.clear();
        for &reg in &[rs, rt] {
            let base = header.region_page[reg as usize];
            reqs.extend((0..ppr).map(|c| (scheme.data_file, base + c)));
        }
        let pages = pir.run_round(link, reqs)?;
        let mut q = std::collections::VecDeque::with_capacity(2);
        for (&region, group) in [rs, rt].iter().zip(pages.chunks(ppr as usize)) {
            region_bytes.clear();
            for page in group {
                region_bytes.extend_from_slice(unseal_page(page)?);
            }
            q.push_back((
                region,
                Arc::new(decode_region(region_bytes, &header.record_format)?),
            ));
        }
        q
    };
    let out = {
        let mut fetch = |region: u16| -> Result<Arc<RegionData>> {
            if let Some((prefetched_region, data)) = prefetched.pop_front() {
                if prefetched_region != region {
                    return Err(crate::error::CoreError::Query(format!(
                        "search requested region {region} but round two prefetched \
                         {prefetched_region}"
                    )));
                }
                return Ok(data);
            }
            // rounds 3, 4, ...: one region's page group per round
            let base = header.region_page[region as usize];
            reqs.clear();
            reqs.extend((0..ppr).map(|c| (scheme.data_file, base + c)));
            let pages = pir.run_round(link, reqs)?;
            region_bytes.clear();
            for page in pages {
                region_bytes.extend_from_slice(unseal_page(page)?);
            }
            Ok(Arc::new(decode_region(
                region_bytes,
                &header.record_format,
            )?))
        };
        search_af(sub, scratch, rs, rt, s, t, &mut fetch)?
    };

    let mut regions = out.fetches;
    let plan_violation = regions > scheme.max_regions;
    while regions < scheme.max_regions {
        reqs.clear();
        for _ in 0..ppr {
            let dummy = rng.gen_range(0..header.fd_pages.max(1));
            reqs.push((scheme.data_file, dummy));
        }
        let _ = pir.run_round(link, reqs)?;
        regions += 1;
    }
    pir.add_client_compute(client_s);

    let path_nodes = if out.cost.is_some() {
        scratch.path.clone()
    } else {
        Vec::new()
    };
    Ok(QueryOutput {
        answer: PathAnswer {
            cost: out.cost,
            path_nodes,
            src_node: out.s_node,
            dst_node: out.t_node,
        },
        meter: pir.meter.clone(),
        trace: pir.trace.clone(),
        plan_violation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_bits_round_trip() {
        let flags = vec![0b0000_0101u8, 0b1000_0000];
        assert!(flag_set(&flags, 0));
        assert!(!flag_set(&flags, 1));
        assert!(flag_set(&flags, 2));
        assert!(flag_set(&flags, 15));
        assert!(!flag_set(&flags, 14));
        assert!(!flag_set(&flags, 16)); // out of range -> false
    }

    /// Satellite differential: the cached + threaded AF probe driver must
    /// derive exactly the plan the old uncached serial loop derived.
    #[test]
    fn cached_probe_plan_matches_uncached_derivation() {
        use crate::subgraph::{ClientSubgraph, QueryScratch};
        use privpath_graph::gen::{road_like, RoadGenConfig};

        let net = road_like(&RoadGenConfig {
            nodes: 70,
            seed: 29,
            ..Default::default()
        });
        let regions = 6usize;
        let fmt = RecordFormat {
            lm_count: 0,
            with_regions: true,
            flag_bytes: regions.div_ceil(8) as u16,
        };
        let bytes_of = |u: u32| fmt.node_bytes(net.degree(u));
        let partition = partition_into(&net, regions, &bytes_of);
        let r = partition.num_regions();
        let flags = ArcFlags::compute(&net, &partition.region_of_node, r as usize);
        let page_size = 512;
        let payload = page_size - PAGE_CRC_BYTES;
        let ppr = partition
            .region_bytes
            .iter()
            .map(|&b| (b + 4).div_ceil(payload))
            .max()
            .unwrap()
            .max(1) as u32;
        let fd = build_fd(
            &net,
            &partition,
            &fmt,
            &AfExtra { flags: &flags },
            ppr as u16,
            page_size,
        )
        .unwrap();
        let cache: Vec<Arc<RegionData>> = (0..r)
            .map(|reg| offline_region(&fd, reg, ppr, &fmt).map(Arc::new))
            .collect::<Result<_>>()
            .unwrap();

        let n = net.num_nodes() as u32;
        let uncached_max = |probe_pairs: &[(u32, u32)]| -> u32 {
            let mut max_regions = 0u32;
            let mut sub = ClientSubgraph::new();
            let mut scratch = QueryScratch::new();
            for &(s, t) in probe_pairs {
                let rsr = partition.region_of_node[s as usize];
                let rtr = partition.region_of_node[t as usize];
                let mut fetch = |region: u16| offline_region(&fd, region, ppr, &fmt).map(Arc::new);
                sub.clear();
                let out = search_af(
                    &mut sub,
                    &mut scratch,
                    rsr,
                    rtr,
                    net.node_point(s),
                    net.node_point(t),
                    &mut fetch,
                )
                .unwrap();
                max_regions = max_regions.max(out.fetches);
            }
            max_regions
        };

        let all_pairs: Vec<(u32, u32)> = (0..n)
            .flat_map(|s| (0..n).filter(move |&t| t != s).map(move |t| (s, t)))
            .collect();
        let want = uncached_max(&all_pairs);
        for threads in [1usize, 3] {
            let got = probe_max(
                &net,
                &partition.region_of_node,
                &cache,
                ProbeSearch::Af,
                &ProbePairs::Exhaustive,
                threads,
            )
            .unwrap();
            assert_eq!(got, want, "exhaustive plan diverged at {threads} threads");
        }

        let sampled = sample_pairs(n, 96, 0x5eed ^ 0x33aa);
        let want = uncached_max(&sampled);
        for threads in [1usize, 4] {
            let got = probe_max(
                &net,
                &partition.region_of_node,
                &cache,
                ProbeSearch::Af,
                &ProbePairs::Sampled(sampled.clone()),
                threads,
            )
            .unwrap();
            assert_eq!(got, want, "sampled plan diverged at {threads} threads");
        }
    }

    #[test]
    fn af_extra_encodes_arcflags() {
        use privpath_graph::gen::{grid_network, GridGenConfig};
        let net = grid_network(&GridGenConfig {
            nx: 5,
            ny: 5,
            ..Default::default()
        });
        let regions: Vec<u16> = (0..net.num_nodes()).map(|u| (u % 4) as u16).collect();
        let flags = ArcFlags::compute(&net, &regions, 4);
        let extra = AfExtra { flags: &flags };
        for e in (0..net.num_arcs() as u32).step_by(7) {
            let bytes = extra.edge_flags(e);
            for r in 0..4usize {
                assert_eq!(flag_set(&bytes, r), flags.get(e, r), "edge {e} region {r}");
            }
        }
    }
}
