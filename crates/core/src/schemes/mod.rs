//! Scheme implementations: the paper's CI/PI/HY/PI* (index family) and the
//! LM/AF/OBF baselines.

pub mod af;
pub mod index_scheme;
pub mod lm;
pub mod obf;
