//! Scheme implementations: the paper's CI/PI/HY/PI* (index family) and the
//! LM/AF/OBF baselines. All seven build into a
//! [`crate::engine::Database`] and query through a
//! [`crate::engine::QuerySession`] — one build API, one query API, one
//! meter/trace plumbing. The LM/AF interleaved searches run on the CSR
//! client arena of [`crate::subgraph`]; their original `HashMap`
//! implementations are retained under `lm::reference` / `af::reference` for
//! the differential property suites.

pub mod af;
pub mod index_scheme;
pub mod lm;
pub mod obf;
pub(crate) mod plan_probe;
