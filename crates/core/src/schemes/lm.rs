//! The LM baseline (§4): Landmark vectors + A* with on-demand region
//! fetching and a fixed page budget.
//!
//! "In the first round of processing, the querying client requests for and
//! receives a header file ... In round two, she fetches from Fd the pages
//! that hold the data of these two regions ... When the search encounters a
//! node that belongs to another region, a new round of processing is
//! initiated and the corresponding Fd page is fetched via the PIR interface,
//! and so on, until the destination t is reached. ... upon reaching t, the
//! client may need to make dummy requests until the necessary number of page
//! retrievals is reached."

use crate::config::BuildConfig;
use crate::engine::{PathAnswer, QueryOutput};
use crate::files::fd::{build_fd, decode_region, NodeExtra, RecordFormat, RegionData};
use crate::files::fh::Header;
use crate::files::{unseal_page, PAGE_CRC_BYTES};
use crate::plan::{PlanFile, QueryPlan, RoundSpec};
use crate::schemes::index_scheme::{BuildStats, StageBreakdown};
use crate::schemes::plan_probe::{probe_max, sample_pairs, ProbePairs, ProbeSearch};
use crate::subgraph::search_lm;
use crate::Result;
use privpath_graph::landmark::Landmarks;
use privpath_graph::network::RoadNetwork;
use privpath_graph::types::{NodeId, Point};
use privpath_pir::{FileId, PirMode, PirServer, Transport};
use privpath_storage::{MemFile, PagedFile};
use rand::Rng;
use std::sync::Arc;

pub use crate::subgraph::lm_bound;

/// Built LM database handles.
pub struct LmScheme {
    /// The public header.
    pub header: Header,
    /// Header file id.
    pub header_file: FileId,
    /// Region data file id.
    pub data_file: FileId,
    /// Total `Fd` pages any query fetches (the fixed plan budget).
    pub max_pages: u32,
}

struct LmExtra<'a> {
    lm: &'a Landmarks,
}

impl NodeExtra for LmExtra<'_> {
    fn lm_vec(&self, node: u32) -> Vec<u32> {
        self.lm.to_anchor[node as usize]
            .iter()
            .map(|&d| {
                if d == privpath_graph::INFINITY {
                    u32::MAX
                } else {
                    d.min(u64::from(u32::MAX - 1)) as u32
                }
            })
            .collect()
    }
}

/// The original `HashMap`-based client search, retained verbatim as the
/// behavioural reference for the CSR-arena [`crate::subgraph::search_lm`]
/// that replaced it on the query path. The differential property suite
/// (`tests/leakage.rs`) asserts both return identical answers, snapped
/// nodes, paths and fetch counts on identical inputs — which makes their
/// PIR meter charges identical too.
pub mod reference {
    use super::*;
    use crate::error::CoreError;
    use crate::files::fd::NodeData;
    use privpath_graph::types::Dist;
    use std::collections::HashMap;

    /// What the reference search produced. `pages` counts region fetches
    /// including the two initial host regions.
    pub struct SearchOutcome {
        /// Path cost, or `None` if the destination is unreachable.
        pub cost: Option<Dist>,
        /// Node sequence of the found path (empty when unreachable).
        pub path: Vec<NodeId>,
        /// Node the source point snapped to.
        pub s_node: NodeId,
        /// Node the destination point snapped to.
        pub t_node: NodeId,
        /// Region page fetches issued.
        pub pages: u32,
    }

    /// A* over `HashMap` state with on-demand region fetching.
    pub fn lm_search(
        rs: u16,
        rt: u16,
        s: Point,
        t: Point,
        fetch: &mut dyn FnMut(u16) -> Result<RegionData>,
    ) -> Result<SearchOutcome> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let mut known: HashMap<NodeId, NodeData> = HashMap::new();
        let mut members: HashMap<u16, Vec<NodeId>> = HashMap::new();
        let mut pages = 0u32;
        let load = |region: u16,
                    known: &mut HashMap<NodeId, NodeData>,
                    members: &mut HashMap<u16, Vec<NodeId>>,
                    pages: &mut u32,
                    fetch: &mut dyn FnMut(u16) -> Result<RegionData>|
         -> Result<()> {
            let data = fetch(region)?;
            *pages += 1;
            if !members.contains_key(&region) {
                let list = members.entry(region).or_default();
                for n in data.nodes {
                    list.push(n.id);
                    known.insert(n.id, n);
                }
            }
            Ok(())
        };

        // Round-two fetches: both host regions (two page fetches even if
        // equal, per the fixed plan).
        load(rs, &mut known, &mut members, &mut pages, fetch)?;
        load(rt, &mut known, &mut members, &mut pages, fetch)?;

        let snap = |region: u16,
                    p: Point,
                    known: &HashMap<NodeId, NodeData>,
                    members: &HashMap<u16, Vec<NodeId>>| {
            members.get(&region).and_then(|list| {
                list.iter()
                    .copied()
                    .min_by_key(|id| known[id].pos.dist2(&p))
            })
        };
        let s_node = snap(rs, s, &known, &members)
            .ok_or_else(|| CoreError::Query("empty source region".into()))?;
        let t_node = snap(rt, t, &known, &members)
            .ok_or_else(|| CoreError::Query("empty target region".into()))?;
        let t_vec = known[&t_node].lm_vec.clone();

        if s_node == t_node {
            return Ok(SearchOutcome {
                cost: Some(0),
                path: vec![s_node],
                s_node,
                t_node,
                pages,
            });
        }

        let mut g: HashMap<NodeId, Dist> = HashMap::new();
        let mut parent: HashMap<NodeId, NodeId> = HashMap::new();
        let mut region_hint: HashMap<NodeId, u16> = HashMap::new();
        let mut heap: BinaryHeap<Reverse<(Dist, Dist, NodeId)>> = BinaryHeap::new();
        let mut incumbent = Dist::MAX;

        g.insert(s_node, 0);
        let h0 = lm_bound(&known[&s_node].lm_vec, &t_vec);
        heap.push(Reverse((h0, 0, s_node)));

        while let Some(&Reverse((f, _, _))) = heap.peek() {
            if incumbent != Dist::MAX && f >= incumbent {
                break; // admissible bounds: nothing better remains
            }
            let Reverse((_, gu, u)) = heap.pop().expect("peeked");
            if gu > *g.get(&u).unwrap_or(&Dist::MAX) {
                continue; // stale
            }
            if !known.contains_key(&u) {
                let region = *region_hint
                    .get(&u)
                    .ok_or_else(|| CoreError::Query(format!("no region hint for node {u}")))?;
                load(region, &mut known, &mut members, &mut pages, fetch)?;
                let hu = known
                    .get(&u)
                    .map(|n| lm_bound(&n.lm_vec, &t_vec))
                    .ok_or_else(|| {
                        CoreError::Query(format!("node {u} missing after region fetch"))
                    })?;
                heap.push(Reverse((gu + hu, gu, u)));
                continue;
            }
            if u == t_node {
                incumbent = incumbent.min(gu);
                continue;
            }
            let rec = &known[&u];
            let arcs: Vec<(u32, u32, u16)> =
                rec.adj.iter().map(|a| (a.to, a.w, a.to_region)).collect();
            for (v, w, v_region) in arcs {
                let nd = gu + Dist::from(w);
                if nd < *g.get(&v).unwrap_or(&Dist::MAX) {
                    g.insert(v, nd);
                    parent.insert(v, u);
                    region_hint.insert(v, v_region);
                    let hv = known
                        .get(&v)
                        .map(|n| lm_bound(&n.lm_vec, &t_vec))
                        .unwrap_or(0);
                    heap.push(Reverse((nd + hv, nd, v)));
                    if v == t_node {
                        incumbent = incumbent.min(nd);
                    }
                }
            }
        }

        if incumbent == Dist::MAX {
            return Ok(SearchOutcome {
                cost: None,
                path: Vec::new(),
                s_node,
                t_node,
                pages,
            });
        }
        let mut path = vec![t_node];
        let mut cur = t_node;
        while let Some(&p) = parent.get(&cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Ok(SearchOutcome {
            cost: Some(incumbent),
            path,
            s_node,
            t_node,
            pages,
        })
    }
}

fn offline_region(fd: &MemFile, region: u16, fmt: &RecordFormat) -> Result<RegionData> {
    let page = fd.read_page(u32::from(region))?;
    decode_region(unseal_page(&page)?, fmt)
}

/// Builds the LM database: packed partition with landmark-extended records,
/// plan derived by running the search over sampled (or all) node pairs.
pub fn build(
    net: &RoadNetwork,
    cfg: &BuildConfig,
    server: &mut PirServer,
) -> Result<(LmScheme, BuildStats)> {
    use std::time::Instant;
    let mut stage_s = StageBreakdown::default();
    let t0 = Instant::now();
    let lm = Landmarks::build(net, cfg.landmarks.max(1));
    stage_s.precompute_s = t0.elapsed().as_secs_f64();
    let fmt = RecordFormat {
        lm_count: lm.len() as u16,
        with_regions: true,
        flag_bytes: 0,
    };
    let page_size = cfg.spec.page_size;
    let capacity = (page_size - PAGE_CRC_BYTES) - 4;
    let bytes_of = |u: u32| fmt.node_bytes(net.degree(u));
    let t0 = Instant::now();
    let partition = if cfg.packed_partition {
        privpath_partition::partition_packed(net, capacity, &bytes_of)
    } else {
        privpath_partition::partition_plain(net, capacity, &bytes_of)
    };
    stage_s.partition_s = t0.elapsed().as_secs_f64();
    let r = partition.num_regions();
    let t0 = Instant::now();
    let fd = build_fd(net, &partition, &fmt, &LmExtra { lm: &lm }, 1, page_size)?;
    stage_s.files_s = t0.elapsed().as_secs_f64();

    // ---- plan derivation: max pages over (sampled or all) node pairs ----
    // Runs the same CSR-arena search the online query path uses, so the
    // derived budget matches the online fetch counts exactly. Each region
    // page is unsealed and decoded once into the probe cache; the probe
    // loop itself is striped across `cfg.threads` workers with a
    // deterministic max-reduction (see [`crate::schemes::plan_probe`]).
    let t0 = Instant::now();
    let cache: Vec<Arc<RegionData>> = (0..r)
        .map(|reg| offline_region(&fd, reg, &fmt).map(Arc::new))
        .collect::<Result<_>>()?;
    let n = net.num_nodes() as u32;
    let pairs = if cfg.plan_sample == 0 {
        // The paper's exhaustive derivation ("from all possible sources s ∈ V
        // to all possible destinations t ∈ V") — quadratic, small nets only.
        ProbePairs::Exhaustive
    } else {
        ProbePairs::Sampled(sample_pairs(n, cfg.plan_sample, cfg.seed ^ 0x1a2b))
    };
    let mut max_pages = probe_max(
        net,
        &partition.region_of_node,
        &cache,
        ProbeSearch::Lm,
        &pairs,
        cfg.resolved_threads(),
    )?
    .max(2);
    if cfg.plan_sample != 0 {
        // safety margin over the sampled maximum
        max_pages =
            ((f64::from(max_pages) * (1.0 + cfg.plan_margin)).ceil() as u32).min(u32::from(r) + 2);
    }
    drop(cache);
    stage_s.plan_s = t0.elapsed().as_secs_f64();

    let mut rounds = vec![
        RoundSpec::one(PlanFile::Header, 0),
        RoundSpec::one(PlanFile::Data, 2),
    ];
    for _ in 0..max_pages.saturating_sub(2) {
        rounds.push(RoundSpec::one(PlanFile::Data, 1));
    }
    let plan = QueryPlan { rounds };

    let header = Header {
        scheme: crate::engine::SchemeKind::Lm.byte(),
        page_size: page_size as u32,
        num_regions: r,
        cluster_pages: 1,
        record_format: fmt,
        m_regions: 0,
        index_span: 0,
        hy_round4: 0,
        combined_fd_offset: 0,
        fl_pages: 0,
        fi_pages: 0,
        fd_pages: fd.num_pages(),
        tree: partition.tree.clone(),
        region_page: (0..u32::from(r)).collect(),
        plan,
    };
    let t0 = Instant::now();
    let header_mem = header.to_file(page_size);
    let header_file = server.add_file("Fh", header_mem, PirMode::CostOnly)?;
    let fd_pages = fd.num_pages();
    let data_file = server.add_file("Fd", fd, cfg.pir_mode.clone())?;
    stage_s.files_s += t0.elapsed().as_secs_f64();

    let stats = BuildStats {
        regions: u32::from(r),
        borders: 0,
        m: 0,
        index_span: 0,
        fd_utilization: partition.utilization(),
        pages: (0, 0, fd_pages),
        s_histogram: Vec::new(),
        stage_s,
    };
    Ok((
        LmScheme {
            header,
            header_file,
            data_file,
            max_pages,
        },
        stats,
    ))
}

/// Executes one private LM query. `link` is the session's transport to the
/// shared page host; all mutation happens in `ctx` — the interleaved A*
/// runs on the session's CSR arena and scratch buffers, so the search
/// itself allocates nothing in steady state.
///
/// Round batching: the client knows round two's page list — the two host
/// regions — before the search starts, so it is prefetched as one
/// [`privpath_pir::PirSession::run_round`] batch and handed to the search's
/// first two fetch calls. Every later round of the interleaved search is
/// data-dependent and holds one page, issued as a batch of one; the trace is
/// event-for-event identical to per-fetch execution.
pub fn query(
    scheme: &LmScheme,
    link: &mut dyn Transport,
    ctx: &mut crate::engine::QueryCtx,
    s: Point,
    t: Point,
) -> Result<QueryOutput> {
    use std::time::Instant;
    let crate::engine::QueryCtx {
        pir,
        rng,
        sub,
        scratch,
        ..
    } = ctx;
    pir.reset_query();
    sub.clear();

    pir.begin_round(link)?;
    let raw = pir.download_full(link, scheme.header_file)?;
    let page_size = link.spec().page_size;
    let t0 = Instant::now();
    let payload = crate::files::unseal_download(&raw, page_size)?;
    let header = Header::parse(&payload)?;
    let rs = header.tree.region_of(s);
    let rt = header.tree.region_of(t);
    let client_s = t0.elapsed().as_secs_f64();

    // Round 2: both host regions, one batch (two page fetches even if the
    // regions coincide, per the fixed plan).
    let mut prefetched: std::collections::VecDeque<(u16, Arc<RegionData>)> = {
        let pages = pir.run_round(
            link,
            &[
                (scheme.data_file, header.region_page[rs as usize]),
                (scheme.data_file, header.region_page[rt as usize]),
            ],
        )?;
        let mut q = std::collections::VecDeque::with_capacity(2);
        for (&region, page) in [rs, rt].iter().zip(pages) {
            q.push_back((
                region,
                Arc::new(decode_region(unseal_page(page)?, &header.record_format)?),
            ));
        }
        q
    };
    let out = {
        let mut fetch = |region: u16| -> Result<Arc<RegionData>> {
            if let Some((prefetched_region, data)) = prefetched.pop_front() {
                if prefetched_region != region {
                    return Err(crate::error::CoreError::Query(format!(
                        "search requested region {region} but round two prefetched \
                         {prefetched_region}"
                    )));
                }
                return Ok(data);
            }
            // rounds 3, 4, ...: one data-dependent page each
            let pages = pir.run_round(
                link,
                &[(scheme.data_file, header.region_page[region as usize])],
            )?;
            Ok(Arc::new(decode_region(
                unseal_page(&pages[0])?,
                &header.record_format,
            )?))
        };
        search_lm(sub, scratch, rs, rt, s, t, &mut fetch)?
    };

    // Dummy rounds to reach the plan budget (one page per round).
    let mut pages = out.fetches;
    let plan_violation = pages > scheme.max_pages;
    while pages < scheme.max_pages {
        let dummy = rng.gen_range(0..header.fd_pages.max(1));
        let _ = pir.run_round(link, &[(scheme.data_file, dummy)])?;
        pages += 1;
    }
    pir.add_client_compute(client_s);

    let path_nodes = if out.cost.is_some() {
        scratch.path.clone()
    } else {
        Vec::new()
    };
    Ok(QueryOutput {
        answer: PathAnswer {
            cost: out.cost,
            path_nodes,
            src_node: out.s_node,
            dst_node: out.t_node,
        },
        meter: pir.meter.clone(),
        trace: pir.trace.clone(),
        plan_violation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lm_bound_ignores_infinity_sentinels() {
        assert_eq!(lm_bound(&[10, u32::MAX], &[4, 7]), 6);
        assert_eq!(lm_bound(&[10, 100], &[4, u32::MAX]), 6);
        assert_eq!(lm_bound(&[], &[]), 0);
    }

    #[test]
    fn lm_bound_is_symmetric_difference() {
        assert_eq!(lm_bound(&[5], &[12]), 7);
        assert_eq!(lm_bound(&[12], &[5]), 7);
        assert_eq!(lm_bound(&[3, 50], &[9, 41]), 9);
    }

    /// Satellite differential: the cached + threaded probe driver must
    /// derive exactly the plan the old uncached serial loop derived — for
    /// the exhaustive mode and the sampled mode, across thread counts.
    #[test]
    fn cached_probe_plan_matches_uncached_derivation() {
        use crate::subgraph::{ClientSubgraph, QueryScratch};
        use privpath_graph::gen::{road_like, RoadGenConfig};

        let net = road_like(&RoadGenConfig {
            nodes: 70,
            seed: 13,
            ..Default::default()
        });
        let lm = Landmarks::build(&net, 3);
        let fmt = RecordFormat {
            lm_count: lm.len() as u16,
            with_regions: true,
            flag_bytes: 0,
        };
        let page_size = 512;
        let capacity = (page_size - PAGE_CRC_BYTES) - 4;
        let bytes_of = |u: u32| fmt.node_bytes(net.degree(u));
        let partition = privpath_partition::partition_packed(&net, capacity, &bytes_of);
        let r = partition.num_regions();
        assert!(r >= 3, "need a multi-region net for a meaningful plan");
        let fd = build_fd(&net, &partition, &fmt, &LmExtra { lm: &lm }, 1, page_size).unwrap();
        let cache: Vec<Arc<RegionData>> = (0..r)
            .map(|reg| offline_region(&fd, reg, &fmt).map(Arc::new))
            .collect::<Result<_>>()
            .unwrap();

        // The uncached serial reference: decode through `offline_region` on
        // every fetch, exactly like the pre-cache derivation loop.
        let n = net.num_nodes() as u32;
        let uncached_max = |probe_pairs: &[(u32, u32)]| -> u32 {
            let mut max_pages = 0u32;
            let mut sub = ClientSubgraph::new();
            let mut scratch = QueryScratch::new();
            for &(s, t) in probe_pairs {
                let rs = partition.region_of_node[s as usize];
                let rt = partition.region_of_node[t as usize];
                let mut fetch = |region: u16| offline_region(&fd, region, &fmt).map(Arc::new);
                sub.clear();
                let out = search_lm(
                    &mut sub,
                    &mut scratch,
                    rs,
                    rt,
                    net.node_point(s),
                    net.node_point(t),
                    &mut fetch,
                )
                .unwrap();
                max_pages = max_pages.max(out.fetches);
            }
            max_pages
        };

        // exhaustive mode
        let all_pairs: Vec<(u32, u32)> = (0..n)
            .flat_map(|s| (0..n).filter(move |&t| t != s).map(move |t| (s, t)))
            .collect();
        let want = uncached_max(&all_pairs);
        for threads in [1usize, 3] {
            let got = probe_max(
                &net,
                &partition.region_of_node,
                &cache,
                ProbeSearch::Lm,
                &ProbePairs::Exhaustive,
                threads,
            )
            .unwrap();
            assert_eq!(got, want, "exhaustive plan diverged at {threads} threads");
        }

        // sampled mode (the pre-drawn pair list is the shared input)
        let sampled = sample_pairs(n, 96, 0x5eed ^ 0x1a2b);
        let want = uncached_max(&sampled);
        for threads in [1usize, 4] {
            let got = probe_max(
                &net,
                &partition.region_of_node,
                &cache,
                ProbeSearch::Lm,
                &ProbePairs::Sampled(sampled.clone()),
                threads,
            )
            .unwrap();
            assert_eq!(got, want, "sampled plan diverged at {threads} threads");
        }
    }

    #[test]
    fn landmark_vectors_saturate() {
        use privpath_graph::gen::{grid_network, GridGenConfig};
        let net = grid_network(&GridGenConfig {
            nx: 4,
            ny: 4,
            ..Default::default()
        });
        let lm = Landmarks::build(&net, 2);
        let extra = LmExtra { lm: &lm };
        for u in 0..net.num_nodes() as u32 {
            let v = extra.lm_vec(u);
            assert_eq!(v.len(), 2);
            assert!(v.iter().all(|&x| x != u32::MAX), "grid is connected");
        }
    }
}
