//! The OBF obfuscation baseline (§7.3), based on Lee et al. [22].
//!
//! "Instead of the query source s, this scheme sends to the LBS a set S that
//! includes s and a number of fake source locations. Similarly, it sends a
//! set of candidate destinations T ... The LBS computes the shortest path
//! from every location in S to every location in T." As in the paper's
//! evaluation, decoys are "randomly and uniformly chosen in the road
//! network". OBF provides only weak privacy (the LBS learns |S| candidate
//! sources and |T| candidate destinations) — it is measured for performance
//! context only.
//!
//! Unlike the PIR schemes, OBF stores the plaintext network at the LBS and
//! performs no PIR fetches, but it builds into the same
//! [`crate::engine::Database`] and queries through the same
//! [`crate::engine::QuerySession`] as every other scheme: the session's
//! [`privpath_pir::PirSession`] does the cost accounting (rounds,
//! communication, server compute) and its RNG draws the decoys.

use crate::config::BuildConfig;
use crate::engine::{PathAnswer, QueryOutput};
use crate::error::CoreError;
use crate::plan::QueryPlan;
use crate::schemes::index_scheme::BuildStats;
use crate::Result;
use privpath_graph::dijkstra::dijkstra;
use privpath_graph::network::RoadNetwork;
use privpath_graph::path::Path;
use privpath_graph::types::{NodeId, Point};
use privpath_pir::{PirServer, Transport};
use rand::Rng;

/// Built OBF "database": the plaintext network the LBS computes on (OBF has
/// no PIR files) plus the obfuscation parameter.
pub struct ObfScheme {
    /// The road network, as the LBS stores it.
    pub net: RoadNetwork,
    /// `|S| = |T|` — the real endpoint plus `decoys - 1` fakes (the x-axis
    /// of Figure 6).
    pub decoys: usize,
    /// Trivial fixed plan: one round, no PIR fetches. (OBF's leakage is in
    /// the uploaded candidate sets, which the trace abstraction — built for
    /// PIR access patterns — does not model.)
    pub plan: QueryPlan,
}

/// "Builds" the OBF database: the LBS just keeps the plaintext network.
pub fn build(
    net: &RoadNetwork,
    cfg: &BuildConfig,
    _server: &mut PirServer,
) -> Result<(ObfScheme, BuildStats)> {
    if cfg.obf_decoys < 1 {
        return Err(CoreError::Build(
            "obf_decoys must be >= 1 (the real source/destination)".into(),
        ));
    }
    if net.num_nodes() == 0 {
        return Err(CoreError::Build("OBF needs a non-empty network".into()));
    }
    Ok((
        ObfScheme {
            net: net.clone(),
            decoys: cfg.obf_decoys,
            plan: QueryPlan {
                rounds: vec![crate::plan::RoundSpec::default()],
            },
        },
        BuildStats::default(),
    ))
}

/// Nearest network node to `p` (ties broken by the lowest node id).
fn nearest_node(net: &RoadNetwork, p: Point) -> NodeId {
    let mut best = (i128::MAX, 0u32);
    for u in 0..net.num_nodes() as u32 {
        let d = net.node_point(u).dist2(&p);
        if d < best.0 {
            best = (d, u);
        }
    }
    best.1
}

/// Executes one obfuscated query (client + LBS in one harness): uploads the
/// decoy sets, charges one `|S|·|T|` shortest-path evaluation to the server
/// bucket, and ships every candidate path back.
pub fn query(
    scheme: &ObfScheme,
    link: &mut dyn Transport,
    ctx: &mut crate::engine::QueryCtx,
    s: Point,
    t: Point,
) -> Result<QueryOutput> {
    use std::time::Instant;
    ctx.pir.reset_query();
    // One protocol round, no PIR fetches: an empty batch just opens the
    // round, so OBF rides the same round executor as the PIR schemes.
    ctx.pir.run_round(link, &[])?;

    let net = &scheme.net;
    let n = net.num_nodes() as u32;
    let s_node = nearest_node(net, s);
    let t_node = nearest_node(net, t);

    // Client: build obfuscation sets (uniform random decoys; real pair first).
    let mut src_set = vec![s_node];
    let mut dst_set = vec![t_node];
    while src_set.len() < scheme.decoys {
        src_set.push(ctx.rng.gen_range(0..n));
    }
    while dst_set.len() < scheme.decoys {
        dst_set.push(ctx.rng.gen_range(0..n));
    }

    // Upload: the candidate coordinates.
    let upload = (src_set.len() + dst_set.len()) as u64 * 8;
    ctx.pir.add_transfer(link.spec(), upload);

    // LBS: one Dijkstra per candidate source (measured), paths for every
    // (s', t') pair shipped back.
    let t0 = Instant::now();
    let mut result_bytes = 0u64;
    let mut answer = None;
    for &sp in &src_set {
        let tree = dijkstra(net, sp);
        for &tp in &dst_set {
            let path = Path::from_tree(&tree, tp);
            if let Some(p) = &path {
                result_bytes += p.wire_bytes() as u64;
            }
            if sp == s_node && tp == t_node {
                answer = Some(match path {
                    Some(p) => PathAnswer {
                        cost: Some(p.cost),
                        path_nodes: p.nodes,
                        src_node: s_node,
                        dst_node: t_node,
                    },
                    None => PathAnswer {
                        cost: None,
                        path_nodes: Vec::new(),
                        src_node: s_node,
                        dst_node: t_node,
                    },
                });
            }
        }
    }
    ctx.pir.add_server_compute(t0.elapsed().as_secs_f64());
    ctx.pir.add_transfer(link.spec(), result_bytes);

    Ok(QueryOutput {
        answer: answer.expect("real pair is in S x T"),
        meter: ctx.pir.meter.clone(),
        trace: ctx.pir.trace.clone(),
        plan_violation: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, SchemeKind};
    use privpath_graph::dijkstra::distance;
    use privpath_graph::gen::{grid_network, GridGenConfig};

    fn engine(net: &RoadNetwork, decoys: usize, seed: u64) -> Engine {
        let cfg = BuildConfig {
            obf_decoys: decoys,
            seed,
            ..Default::default()
        };
        Engine::build(net, SchemeKind::Obf, &cfg).unwrap()
    }

    #[test]
    fn returns_the_real_pair_answer() {
        let net = grid_network(&GridGenConfig {
            nx: 8,
            ny: 8,
            ..Default::default()
        });
        let out = engine(&net, 5, 42).query_nodes(&net, 0, 63).unwrap();
        assert_eq!(out.answer.cost, Some(distance(&net, 0, 63)));
        assert_eq!(out.answer.path_nodes.first(), Some(&0));
        assert_eq!(out.answer.path_nodes.last(), Some(&63));
    }

    #[test]
    fn more_decoys_cost_more_communication() {
        let net = grid_network(&GridGenConfig {
            nx: 10,
            ny: 10,
            ..Default::default()
        });
        let small = engine(&net, 5, 1).query_nodes(&net, 0, 99).unwrap();
        let big = engine(&net, 20, 1).query_nodes(&net, 0, 99).unwrap();
        assert!(big.meter.bytes_transferred > small.meter.bytes_transferred);
        assert!(big.meter.comm_s > small.meter.comm_s);
        // |S|·|T| grows quadratically
        assert!(big.meter.bytes_transferred > small.meter.bytes_transferred * 8);
    }

    #[test]
    fn server_time_is_charged_and_no_pir_fetches_happen() {
        let net = grid_network(&GridGenConfig {
            nx: 12,
            ny: 12,
            ..Default::default()
        });
        let out = engine(&net, 10, 2).query_nodes(&net, 5, 140).unwrap();
        assert!(out.meter.server_s > 0.0);
        assert!(out.meter.response_time_s() > out.meter.server_s);
        assert_eq!(out.meter.rounds, 1);
        assert_eq!(out.meter.total_fetches(), 0);
        assert_eq!(out.trace.total_fetches(), 0);
    }

    #[test]
    fn decoys_of_one_is_unobfuscated() {
        let net = grid_network(&GridGenConfig {
            nx: 6,
            ny: 6,
            ..Default::default()
        });
        let out = engine(&net, 1, 3).query_nodes(&net, 0, 35).unwrap();
        assert_eq!(out.answer.cost, Some(distance(&net, 0, 35)));
    }

    #[test]
    fn zero_decoys_is_a_build_error() {
        let net = grid_network(&GridGenConfig {
            nx: 4,
            ny: 4,
            ..Default::default()
        });
        let cfg = BuildConfig {
            obf_decoys: 0,
            ..Default::default()
        };
        assert!(Engine::build(&net, SchemeKind::Obf, &cfg).is_err());
    }
}
