//! The OBF obfuscation baseline (§7.3), based on Lee et al. [22].
//!
//! "Instead of the query source s, this scheme sends to the LBS a set S that
//! includes s and a number of fake source locations. Similarly, it sends a
//! set of candidate destinations T ... The LBS computes the shortest path
//! from every location in S to every location in T." As in the paper's
//! evaluation, decoys are "randomly and uniformly chosen in the road
//! network". OBF provides only weak privacy (the LBS learns |S| candidate
//! sources and |T| candidate destinations) — it is measured for performance
//! context only.

use crate::engine::PathAnswer;
use privpath_graph::dijkstra::dijkstra;
use privpath_graph::network::RoadNetwork;
use privpath_graph::path::Path;
use privpath_graph::types::NodeId;
use privpath_pir::{Meter, SystemSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Output of one obfuscated query.
#[derive(Debug, Clone)]
pub struct ObfOutput {
    /// The real pair's path.
    pub answer: PathAnswer,
    /// Cost accounting: `server_s` holds the LBS's `|S|·|T|` shortest-path
    /// computations, `comm_s` the decoy upload and `|S|·|T|`-path download.
    pub meter: Meter,
    /// Total result bytes shipped to the client.
    pub result_bytes: u64,
}

/// The obfuscation protocol runner (client + LBS in one harness).
pub struct ObfRunner<'a> {
    net: &'a RoadNetwork,
    spec: SystemSpec,
    decoys: usize,
    rng: SmallRng,
}

impl<'a> ObfRunner<'a> {
    /// `decoys` is `|S| = |T|` (the x-axis of Figure 6).
    pub fn new(net: &'a RoadNetwork, spec: SystemSpec, decoys: usize, seed: u64) -> Self {
        assert!(decoys >= 1, "need at least the real source/destination");
        ObfRunner {
            net,
            spec,
            decoys,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Runs one obfuscated query between two node ids.
    pub fn query(&mut self, s: NodeId, t: NodeId) -> ObfOutput {
        let n = self.net.num_nodes() as u32;
        let mut meter = Meter::new();

        // Client: build obfuscation sets (uniform random decoys).
        let mut src_set = vec![s];
        let mut dst_set = vec![t];
        while src_set.len() < self.decoys {
            src_set.push(self.rng.gen_range(0..n));
        }
        while dst_set.len() < self.decoys {
            dst_set.push(self.rng.gen_range(0..n));
        }

        // Upload: one round trip plus the candidate coordinates.
        meter.rounds = 1;
        meter.comm_s += self.spec.comm_rtt_s;
        let upload = (src_set.len() + dst_set.len()) as u64 * 8;
        meter.comm_s += self.spec.transfer_s(upload);
        meter.bytes_transferred += upload;

        // LBS: one Dijkstra per candidate source (measured), paths for every
        // (s', t') pair shipped back.
        let t0 = std::time::Instant::now();
        let mut result_bytes = 0u64;
        let mut answer = None;
        for &sp in &src_set {
            let tree = dijkstra(self.net, sp);
            for &tp in &dst_set {
                let path = Path::from_tree(&tree, tp);
                if let Some(p) = &path {
                    result_bytes += p.wire_bytes() as u64;
                }
                if sp == s && tp == t {
                    answer = Some(match path {
                        Some(p) => PathAnswer {
                            cost: Some(p.cost),
                            path_nodes: p.nodes,
                            src_node: s,
                            dst_node: t,
                        },
                        None => PathAnswer {
                            cost: None,
                            path_nodes: Vec::new(),
                            src_node: s,
                            dst_node: t,
                        },
                    });
                }
            }
        }
        meter.server_s += t0.elapsed().as_secs_f64();
        meter.comm_s += self.spec.transfer_s(result_bytes);
        meter.bytes_transferred += result_bytes;

        ObfOutput {
            answer: answer.expect("real pair is in S x T"),
            meter,
            result_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privpath_graph::dijkstra::distance;
    use privpath_graph::gen::{grid_network, GridGenConfig};
    use privpath_pir::SystemSpec;

    #[test]
    fn returns_the_real_pair_answer() {
        let net = grid_network(&GridGenConfig {
            nx: 8,
            ny: 8,
            ..Default::default()
        });
        let mut runner = ObfRunner::new(&net, SystemSpec::default(), 5, 42);
        let out = runner.query(0, 63);
        assert_eq!(out.answer.cost, Some(distance(&net, 0, 63)));
        assert_eq!(out.answer.path_nodes.first(), Some(&0));
        assert_eq!(out.answer.path_nodes.last(), Some(&63));
    }

    #[test]
    fn more_decoys_cost_more_communication() {
        let net = grid_network(&GridGenConfig {
            nx: 10,
            ny: 10,
            ..Default::default()
        });
        let small = ObfRunner::new(&net, SystemSpec::default(), 5, 1).query(0, 99);
        let big = ObfRunner::new(&net, SystemSpec::default(), 20, 1).query(0, 99);
        assert!(big.result_bytes > small.result_bytes);
        assert!(big.meter.comm_s > small.meter.comm_s);
        // |S|·|T| grows quadratically
        assert!(big.result_bytes > small.result_bytes * 8);
    }

    #[test]
    fn server_time_is_charged() {
        let net = grid_network(&GridGenConfig {
            nx: 12,
            ny: 12,
            ..Default::default()
        });
        let out = ObfRunner::new(&net, SystemSpec::default(), 10, 2).query(5, 140);
        assert!(out.meter.server_s > 0.0);
        assert!(out.meter.response_time_s() > out.meter.server_s);
    }

    #[test]
    fn decoys_of_one_is_unobfuscated() {
        let net = grid_network(&GridGenConfig {
            nx: 6,
            ny: 6,
            ..Default::default()
        });
        let out = ObfRunner::new(&net, SystemSpec::default(), 1, 3).query(0, 35);
        assert_eq!(out.answer.cost, Some(distance(&net, 0, 35)));
    }
}
