//! The paper's contribution: private shortest-path schemes with no
//! information leakage.
//!
//! Everything here implements Mouratidis & Yiu (PVLDB 2012):
//!
//! * [`augment`] — the augmented graph of §5.2: network edges subdivided at
//!   region crossings so border nodes become ordinary nodes during
//!   pre-processing;
//! * [`precompute`] — one Dijkstra per border node plus a bitset sweep over
//!   each shortest-path tree yields the region sets `S_ij` (CI) and exact
//!   subgraphs `G_ij` (PI) for every region pair;
//! * [`records`] — the network-index record formats, including the in-page
//!   delta compression of §5.5;
//! * [`files`] — the four database files: header `Fh`, look-up `Fl`, network
//!   index `Fi`, region data `Fd` (§5.3), plus the concatenated `Fi|Fd` used
//!   by HY;
//! * [`plan`] — fixed query plans: every query performs the same fetches in
//!   the same order, padded with dummy retrievals (§3.1);
//! * [`subgraph`] — client-side subgraph assembly, Dijkstra over the CSR
//!   arena, and the LM/AF interleaved fetch-and-search drivers;
//! * [`schemes`] — the CI, PI, HY and PI* engines (§5, §6) and the LM / AF /
//!   OBF baselines (§4, §7.3), all behind one build/query API;
//! * [`engine`] — the user-facing facade: build a [`engine::Database`] for
//!   any scheme, query it through [`engine::QuerySession`]s, inspect costs
//!   and traces;
//! * [`audit`] — Theorem 1 as executable checks: query indistinguishability
//!   via trace equality and plan conformance;
//! * [`generation`] — generation-stamped hot swap: a [`generation::DbRegistry`]
//!   runs background rebuilds (updated edge weights) and atomically publishes
//!   new generations while pinned sessions drain on the old one, with
//!   crash-contained rebuild failure;
//! * [`snapshot`] — durable snapshots: [`engine::Database::persist`] writes
//!   a built database as one integrity-checked file (atomic rename,
//!   per-page checksums), [`engine::Database::open_snapshot`] reopens it
//!   memory-resident or disk-backed, and
//!   [`generation::DbRegistry::recover`] cold-starts from the newest valid
//!   snapshot in a directory.

pub mod audit;
pub mod augment;
pub mod config;
pub mod engine;
pub mod error;
pub mod files;
pub mod generation;
pub mod plan;
pub mod precompute;
pub mod records;
pub mod schemes;
pub mod snapshot;
pub mod subgraph;

pub use config::BuildConfig;
pub use engine::{Database, Engine, PathAnswer, QueryOutput, QuerySession, SchemeKind};
pub use error::CoreError;
pub use generation::{DbRegistry, RebuildHandle, RebuildStats};
pub use snapshot::StorageBackend;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
