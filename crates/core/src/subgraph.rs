//! Client-side subgraph assembly and shortest-path computation.
//!
//! After the PIR rounds, the client holds a set of region pages (and, for
//! PI-family schemes, a decoded subgraph `G_st`). "Upon receipt of these
//! data, she possesses a subgraph of G that is guaranteed to contain the
//! desired shortest path. SP(s, t) is computed using Dijkstra's algorithm in
//! this subgraph" (§5.4).

use crate::files::fd::RegionData;
use privpath_graph::types::{Dist, NodeId, Point};
use std::collections::HashMap;

/// The client's partial view of the network.
#[derive(Debug, Default)]
pub struct ClientSubgraph {
    adj: HashMap<NodeId, Vec<(NodeId, u32)>>,
    coords: HashMap<NodeId, Point>,
    /// Nodes per fetched region (for snapping query points to nodes).
    region_nodes: HashMap<u16, Vec<NodeId>>,
}

impl ClientSubgraph {
    /// Empty subgraph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges a decoded region page.
    pub fn add_region(&mut self, data: &RegionData) {
        let list = self.region_nodes.entry(data.region).or_default();
        for n in &data.nodes {
            list.push(n.id);
            self.coords.insert(n.id, n.pos);
            let entry = self.adj.entry(n.id).or_default();
            for a in &n.adj {
                entry.push((a.to, a.w));
            }
        }
    }

    /// Merges subgraph edge triples (PI family).
    pub fn add_edges(&mut self, triples: &[(u32, u32, u32)]) {
        for &(u, v, w) in triples {
            self.adj.entry(u).or_default().push((v, w));
        }
    }

    /// Number of distinct nodes with adjacency data.
    pub fn num_tails(&self) -> usize {
        self.adj.len()
    }

    /// Snaps a query point to the nearest node of `region` ("our
    /// contributions apply to query sources/destinations that lie anywhere
    /// on the road network", §3.1 — we snap within the host region).
    pub fn snap(&self, region: u16, p: Point) -> Option<NodeId> {
        self.region_nodes
            .get(&region)?
            .iter()
            .copied()
            .min_by_key(|&u| self.coords.get(&u).map(|c| c.dist2(&p)).unwrap_or(i128::MAX))
    }

    /// Dijkstra from `s` to `t` over the assembled view. Returns
    /// `(cost, node path)` or `None` if `t` is unreachable in the view.
    pub fn shortest_path(&self, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut dist: HashMap<NodeId, Dist> = HashMap::new();
        let mut parent: HashMap<NodeId, NodeId> = HashMap::new();
        let mut heap: BinaryHeap<Reverse<(Dist, NodeId)>> = BinaryHeap::new();
        dist.insert(s, 0);
        heap.push(Reverse((0, s)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > *dist.get(&u).unwrap_or(&Dist::MAX) {
                continue;
            }
            if u == t {
                let mut path = vec![t];
                let mut cur = t;
                while let Some(&p) = parent.get(&cur) {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some((d, path));
            }
            if let Some(arcs) = self.adj.get(&u) {
                for &(v, w) in arcs {
                    let nd = d + Dist::from(w);
                    if nd < *dist.get(&v).unwrap_or(&Dist::MAX) {
                        dist.insert(v, nd);
                        parent.insert(v, u);
                        heap.push(Reverse((nd, v)));
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::files::fd::{AdjEntry, NodeData};

    fn region(region: u16, nodes: Vec<(u32, (i32, i32), Vec<(u32, u32)>)>) -> RegionData {
        RegionData {
            region,
            nodes: nodes
                .into_iter()
                .map(|(id, (x, y), adj)| NodeData {
                    id,
                    pos: Point::new(x, y),
                    lm_vec: vec![],
                    adj: adj
                        .into_iter()
                        .map(|(to, w)| AdjEntry { to, w, to_region: u16::MAX, flags: vec![] })
                        .collect(),
                })
                .collect(),
        }
    }

    #[test]
    fn path_across_regions() {
        let mut g = ClientSubgraph::new();
        g.add_region(&region(0, vec![(0, (0, 0), vec![(1, 5)]), (1, (1, 0), vec![(0, 5), (2, 7)])]));
        g.add_region(&region(1, vec![(2, (2, 0), vec![(1, 7)])]));
        let (cost, path) = g.shortest_path(0, 2).unwrap();
        assert_eq!(cost, 12);
        assert_eq!(path, vec![0, 1, 2]);
    }

    #[test]
    fn unreachable_is_none() {
        let mut g = ClientSubgraph::new();
        g.add_region(&region(0, vec![(0, (0, 0), vec![])]));
        g.add_region(&region(1, vec![(9, (9, 9), vec![])]));
        assert!(g.shortest_path(0, 9).is_none());
    }

    #[test]
    fn extra_edges_from_subgraph_records() {
        let mut g = ClientSubgraph::new();
        g.add_region(&region(0, vec![(0, (0, 0), vec![(1, 100)]), (1, (5, 0), vec![])]));
        // A cheaper connection arrives via G_st triples.
        g.add_edges(&[(0, 2, 1), (2, 1, 1)]);
        let (cost, path) = g.shortest_path(0, 1).unwrap();
        assert_eq!(cost, 2);
        assert_eq!(path, vec![0, 2, 1]);
    }

    #[test]
    fn duplicate_edges_are_harmless() {
        let mut g = ClientSubgraph::new();
        g.add_region(&region(0, vec![(0, (0, 0), vec![(1, 3)]), (1, (1, 1), vec![])]));
        g.add_edges(&[(0, 1, 3), (0, 1, 3)]);
        let (cost, _) = g.shortest_path(0, 1).unwrap();
        assert_eq!(cost, 3);
    }

    #[test]
    fn snapping_picks_nearest_in_region() {
        let mut g = ClientSubgraph::new();
        g.add_region(&region(
            3,
            vec![(10, (0, 0), vec![]), (11, (100, 100), vec![]), (12, (10, 10), vec![])],
        ));
        assert_eq!(g.snap(3, Point::new(9, 9)), Some(12));
        assert_eq!(g.snap(3, Point::new(-5, 0)), Some(10));
        assert_eq!(g.snap(4, Point::new(0, 0)), None);
    }

    #[test]
    fn trivial_same_node() {
        let mut g = ClientSubgraph::new();
        g.add_region(&region(0, vec![(7, (0, 0), vec![])]));
        let (cost, path) = g.shortest_path(7, 7).unwrap();
        assert_eq!(cost, 0);
        assert_eq!(path, vec![7]);
    }
}
