//! Client-side subgraph assembly and shortest-path computation.
//!
//! After the PIR rounds, the client holds a set of region pages (and, for
//! PI-family schemes, a decoded subgraph `G_st`). "Upon receipt of these
//! data, she possesses a subgraph of G that is guaranteed to contain the
//! desired shortest path. SP(s, t) is computed using Dijkstra's algorithm in
//! this subgraph" (§5.4).
//!
//! The LM and AF baselines interleave fetching with the search instead
//! (§4): their drivers — [`search_lm`] and [`search_af`] — run A* /
//! arc-flag-pruned Dijkstra over the same arena and pull in a region page
//! whenever the frontier pops a node whose record has not arrived yet.
//!
//! This is the client hot path, so it is engineered to be allocation-free in
//! steady state: node ids are interned into a dense range, adjacency is a
//! CSR (compressed sparse row) built by counting sort, and Dijkstra runs
//! over dense arrays with an indexed binary heap (decrease-key, no stale
//! entries). All buffers live in the [`ClientSubgraph`] and [`QueryScratch`]
//! and are cleared — not reallocated — between queries, so a long-running
//! [`crate::engine::QuerySession`] touches the allocator only while its
//! high-water marks still grow.

use crate::error::CoreError;
use crate::files::fd::RegionData;
use crate::Result;
use privpath_graph::heap::IndexedMinHeap;
use privpath_graph::types::{Dist, NodeId, Point};
use std::collections::HashMap;
use std::sync::Arc;

/// Sentinel for "no dense slot".
const NO_SLOT: u32 = u32::MAX;

/// Sentinel for "no region hint".
const NO_REGION: u16 = u16::MAX;

/// ALT-style lower bound from stored (truncated) landmark vectors: the
/// maximum coordinate-wise `|a - b|`, ignoring `u32::MAX` sentinels
/// (unreachable anchors / records not yet fetched).
pub fn lm_bound(u_vec: &[u32], t_vec: &[u32]) -> Dist {
    let mut best = 0u64;
    for (&a, &b) in u_vec.iter().zip(t_vec) {
        if a == u32::MAX || b == u32::MAX {
            continue;
        }
        best = best.max(u64::from(a).abs_diff(u64::from(b)));
    }
    best
}

/// True if bit `region` is set in a little-endian arc-flag byte string.
pub fn flag_set(flags: &[u8], region: usize) -> bool {
    flags
        .get(region / 8)
        .is_some_and(|b| b >> (region % 8) & 1 == 1)
}

/// The client's partial view of the network, interned into dense node slots.
///
/// Accumulate pages with [`add_region`](Self::add_region) /
/// [`add_edges`](Self::add_edges), then solve with
/// [`shortest_path_in`](Self::shortest_path_in). [`clear`](Self::clear)
/// resets the view for the next query while keeping every buffer's capacity.
#[derive(Debug, Default)]
pub struct ClientSubgraph {
    /// External node id → dense slot (cleared per query, capacity kept).
    slot_of: HashMap<NodeId, u32>,
    /// Dense slot → external node id.
    ids: Vec<NodeId>,
    /// Dense slot → coordinates (meaningful only for region-page nodes;
    /// edge-only nodes keep the origin placeholder and are never snapped
    /// because `snap` walks region members exclusively).
    coords: Vec<Point>,
    /// Accumulated arcs as dense `(tail, head, weight)` triples.
    arcs: Vec<(u32, u32, u32)>,
    /// Contiguous per-region membership runs: `(region, start, end)` into
    /// `members`.
    region_runs: Vec<(u16, u32, u32)>,
    /// Dense slots of region members, grouped per `region_runs` entry.
    members: Vec<u32>,
    /// CSR row offsets (`num_nodes + 1` entries once built).
    csr_offsets: Vec<u32>,
    /// CSR column (head slot) array.
    csr_heads: Vec<u32>,
    /// CSR weight array, parallel to `csr_heads`.
    csr_weights: Vec<u32>,
    /// Arc count already folded into the CSR (the CSR is rebuilt only when
    /// new arcs arrived since).
    csr_arcs: usize,
    /// Dense slot → host-region hint (`u16::MAX` = unknown). Filled from
    /// region membership and from the `to_region` adjacency hints carried by
    /// LM/AF records.
    region_of: Vec<u16>,
    /// Dense slot → whether the full node record (coordinates + adjacency)
    /// has been folded in via a region page.
    has_record: Vec<bool>,
    /// Flattened per-slot auxiliary vectors (LM landmark distances),
    /// `aux_stride` entries per slot, extended lazily and `u32::MAX`-padded
    /// for slots whose records have not arrived yet.
    aux: Vec<u32>,
    /// Entries per slot in `aux` (0 when the data carries no aux vectors).
    aux_stride: usize,
    /// Regions already folded in — [`add_region_ext`](Self::add_region_ext)
    /// is idempotent per region so a re-fetch never duplicates members.
    loaded: Vec<u16>,
}

impl ClientSubgraph {
    /// Empty subgraph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forgets all nodes, arcs and regions, keeping allocated capacity.
    pub fn clear(&mut self) {
        self.slot_of.clear();
        self.ids.clear();
        self.coords.clear();
        self.arcs.clear();
        self.region_runs.clear();
        self.members.clear();
        self.csr_offsets.clear();
        self.csr_heads.clear();
        self.csr_weights.clear();
        self.csr_arcs = 0;
        self.region_of.clear();
        self.has_record.clear();
        self.aux.clear();
        self.aux_stride = 0;
        self.loaded.clear();
    }

    /// Number of interned nodes.
    pub fn num_nodes(&self) -> usize {
        self.ids.len()
    }

    fn intern(&mut self, id: NodeId) -> u32 {
        let next = self.ids.len() as u32;
        let slot = *self.slot_of.entry(id).or_insert(next);
        if slot == next {
            self.ids.push(id);
            self.coords.push(Point::new(0, 0));
            self.region_of.push(NO_REGION);
            self.has_record.push(false);
        }
        slot
    }

    /// Merges a decoded region page.
    pub fn add_region(&mut self, data: &RegionData) {
        self.add_region_ext(data, None);
    }

    /// Merges a decoded region page including the baseline extras: records
    /// landmark vectors and region hints, and — when `goal_flag` is set —
    /// keeps only arcs whose flag bit for that region is 1 (AF pruning,
    /// applied at insertion instead of at relaxation; the two are
    /// equivalent because a pruned arc is never relaxed).
    ///
    /// Idempotent per region: a region already folded in is skipped (the
    /// PIR fetch that produced `data` still happened; the caller counts it).
    pub fn add_region_ext(&mut self, data: &RegionData, goal_flag: Option<usize>) {
        if self.loaded.contains(&data.region) {
            return;
        }
        self.loaded.push(data.region);
        if self.aux_stride == 0 {
            self.aux_stride = data.nodes.iter().map(|n| n.lm_vec.len()).max().unwrap_or(0);
        }
        let start = self.members.len() as u32;
        for n in &data.nodes {
            let u = self.intern(n.id);
            self.coords[u as usize] = n.pos;
            self.region_of[u as usize] = data.region;
            self.has_record[u as usize] = true;
            if self.aux_stride > 0 && !n.lm_vec.is_empty() {
                let lo = u as usize * self.aux_stride;
                let hi = lo + self.aux_stride;
                if self.aux.len() < hi {
                    self.aux.resize(hi, u32::MAX);
                }
                self.aux[lo..hi].copy_from_slice(&n.lm_vec[..self.aux_stride]);
            }
            self.members.push(u);
            for a in &n.adj {
                let v = self.intern(a.to);
                if a.to_region != NO_REGION && !self.has_record[v as usize] {
                    self.region_of[v as usize] = a.to_region;
                }
                if goal_flag.is_none_or(|g| flag_set(&a.flags, g)) {
                    self.arcs.push((u, v, a.w));
                }
            }
        }
        self.region_runs
            .push((data.region, start, self.members.len() as u32));
    }

    /// Aux (landmark) vector of a dense slot — empty if none stored yet.
    /// Entries are `u32::MAX` until the slot's record arrives, which makes
    /// [`lm_bound`] degrade to the trivial bound 0, exactly like the
    /// `HashMap` reference search's treatment of unknown nodes.
    fn aux_of(&self, slot: u32) -> &[u32] {
        let lo = slot as usize * self.aux_stride;
        let hi = lo + self.aux_stride;
        if self.aux_stride == 0 || self.aux.len() < hi {
            &[]
        } else {
            &self.aux[lo..hi]
        }
    }

    /// Merges subgraph edge triples (PI family).
    pub fn add_edges(&mut self, triples: &[(u32, u32, u32)]) {
        for &(u, v, w) in triples {
            let du = self.intern(u);
            let dv = self.intern(v);
            self.arcs.push((du, dv, w));
        }
    }

    /// Snaps a query point to the nearest node of `region` ("our
    /// contributions apply to query sources/destinations that lie anywhere
    /// on the road network", §3.1 — we snap within the host region).
    pub fn snap(&self, region: u16, p: Point) -> Option<NodeId> {
        let mut best: Option<(i128, NodeId)> = None;
        for &(r, start, end) in &self.region_runs {
            if r != region {
                continue;
            }
            for &u in &self.members[start as usize..end as usize] {
                let d = self.coords[u as usize].dist2(&p);
                let key = (d, self.ids[u as usize]);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        best.map(|(_, id)| id)
    }

    /// Snaps like [`snap`](Self::snap) but breaks distance ties by region
    /// insertion order (first minimum wins) instead of by external node id —
    /// matching the `HashMap` reference searches' `min_by_key`, so the LM/AF
    /// differential suites can require exact equality.
    pub fn snap_first(&self, region: u16, p: Point) -> Option<NodeId> {
        let mut best: Option<(i128, NodeId)> = None;
        for &(r, start, end) in &self.region_runs {
            if r != region {
                continue;
            }
            for &u in &self.members[start as usize..end as usize] {
                let d = self.coords[u as usize].dist2(&p);
                if best.is_none_or(|(bd, _)| d < bd) {
                    best = Some((d, self.ids[u as usize]));
                }
            }
        }
        best.map(|(_, id)| id)
    }

    /// (Re)builds the CSR adjacency from the accumulated arcs by counting
    /// sort. Idempotent: a no-op unless arcs arrived since the last build.
    fn build_csr(&mut self) {
        let n = self.ids.len();
        if self.csr_arcs == self.arcs.len() && self.csr_offsets.len() == n + 1 {
            return;
        }
        let m = self.arcs.len();
        self.csr_offsets.clear();
        self.csr_offsets.resize(n + 1, 0);
        for &(u, _, _) in &self.arcs {
            self.csr_offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            self.csr_offsets[i + 1] += self.csr_offsets[i];
        }
        self.csr_heads.clear();
        self.csr_heads.resize(m, 0);
        self.csr_weights.clear();
        self.csr_weights.resize(m, 0);
        // Scatter using the offsets as cursors, then restore them by shifting
        // (after the scatter, offsets[u] holds the end of row u).
        for &(u, v, w) in &self.arcs {
            let at = self.csr_offsets[u as usize] as usize;
            self.csr_heads[at] = v;
            self.csr_weights[at] = w;
            self.csr_offsets[u as usize] += 1;
        }
        for i in (1..=n).rev() {
            self.csr_offsets[i] = self.csr_offsets[i - 1];
        }
        self.csr_offsets[0] = 0;
        self.csr_arcs = m;
    }

    /// Dijkstra from `s` to `t` over the assembled view, using (and
    /// populating) `scratch`. Returns the cost, or `None` if `t` is
    /// unreachable; on success the node path is in
    /// [`QueryScratch::path`].
    pub fn shortest_path_in(
        &mut self,
        scratch: &mut QueryScratch,
        s: NodeId,
        t: NodeId,
    ) -> Option<Dist> {
        self.build_csr();
        let (&s_slot, &t_slot) = (self.slot_of.get(&s)?, self.slot_of.get(&t)?);
        let n = self.ids.len();
        scratch.reset(n);
        scratch.dist[s_slot as usize] = 0;
        scratch.heap.push(s_slot, (0, s));
        while let Some(u) = scratch.heap.pop() {
            if u == t_slot {
                scratch.emit_path(t_slot, &self.ids);
                return Some(scratch.dist[t_slot as usize]);
            }
            let du = scratch.dist[u as usize];
            let (lo, hi) = (
                self.csr_offsets[u as usize] as usize,
                self.csr_offsets[u as usize + 1] as usize,
            );
            for k in lo..hi {
                let v = self.csr_heads[k];
                let nd = du + Dist::from(self.csr_weights[k]);
                if nd < scratch.dist[v as usize] {
                    scratch.dist[v as usize] = nd;
                    scratch.parent[v as usize] = u;
                    scratch.heap.push_or_decrease(v, (nd, self.ids[v as usize]));
                }
            }
        }
        None
    }

    /// Convenience wrapper over [`shortest_path_in`](Self::shortest_path_in)
    /// with a throwaway scratch: returns `(cost, node path)` or `None` if
    /// `t` is unreachable in the view.
    pub fn shortest_path(&mut self, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)> {
        let mut scratch = QueryScratch::new();
        let cost = self.shortest_path_in(&mut scratch, s, t)?;
        Some((cost, scratch.path.clone()))
    }
}

/// Reusable solver state for the client Dijkstra: distance / parent arrays,
/// the indexed binary heap, and the output path buffer. One instance lives
/// in each [`crate::engine::QuerySession`]; between queries it is cleared,
/// never reallocated (capacity ratchets up to the high-water mark).
#[derive(Debug, Default)]
pub struct QueryScratch {
    /// Tentative distances per dense slot.
    dist: Vec<Dist>,
    /// Dijkstra tree parent per dense slot (`NO_SLOT` = none).
    parent: Vec<u32>,
    /// The shared indexed-heap kernel ([`privpath_graph::heap`]), keyed by
    /// `(dist, external id)` — the external-id tie-break keeps the settle
    /// order canonical regardless of interning order.
    heap: IndexedMinHeap,
    /// Lazy-deletion binary min-heap for the interleaved fetch-and-search
    /// drivers: `(primary key, secondary key, slot)` entries whose final
    /// tiebreak is the slot's external id — the exact ordering of the
    /// `HashMap` reference searches' `BinaryHeap<Reverse<(_, _, NodeId)>>`.
    lazy: Vec<(Dist, Dist, u32)>,
    /// Per-query copy of the target's aux vector (`t_vec` of the LM bound),
    /// held here so heuristic evaluation never borrows the growing arena.
    aux_key: Vec<u32>,
    /// Node path of the last successful query (external ids, source first).
    pub path: Vec<NodeId>,
}

impl QueryScratch {
    /// Fresh scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Prepares the buffers for a graph of `n` dense slots.
    fn reset(&mut self, n: usize) {
        self.dist.clear();
        self.dist.resize(n, Dist::MAX);
        self.parent.clear();
        self.parent.resize(n, NO_SLOT);
        self.heap.reset(n);
        self.lazy.clear();
        self.aux_key.clear();
        self.path.clear();
    }

    /// Extends the dense buffers to `n` slots without disturbing existing
    /// entries — the interleaved searches grow the arena mid-query.
    fn ensure(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, Dist::MAX);
            self.parent.resize(n, NO_SLOT);
            self.heap.ensure(n);
        }
    }

    /// `true` if lazy-heap entry `a` orders before `b` (full-key min-heap:
    /// primary, secondary, then the slot's external id).
    fn lazy_less(&self, a: (Dist, Dist, u32), b: (Dist, Dist, u32), ids: &[NodeId]) -> bool {
        (a.0, a.1, ids[a.2 as usize]) < (b.0, b.1, ids[b.2 as usize])
    }

    fn lazy_push(&mut self, entry: (Dist, Dist, u32), ids: &[NodeId]) {
        self.lazy.push(entry);
        let mut i = self.lazy.len() - 1;
        while i > 0 {
            let up = (i - 1) / 2;
            if !self.lazy_less(self.lazy[i], self.lazy[up], ids) {
                break;
            }
            self.lazy.swap(i, up);
            i = up;
        }
    }

    fn lazy_peek(&self) -> Option<(Dist, Dist, u32)> {
        self.lazy.first().copied()
    }

    fn lazy_pop(&mut self, ids: &[NodeId]) -> Option<(Dist, Dist, u32)> {
        if self.lazy.is_empty() {
            return None;
        }
        let top = self.lazy.swap_remove(0);
        let mut i = 0usize;
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.lazy.len() && self.lazy_less(self.lazy[l], self.lazy[best], ids) {
                best = l;
            }
            if r < self.lazy.len() && self.lazy_less(self.lazy[r], self.lazy[best], ids) {
                best = r;
            }
            if best == i {
                break;
            }
            self.lazy.swap(i, best);
            i = best;
        }
        Some(top)
    }

    /// Walks parents from `t_slot` and writes the external-id path (source
    /// first) into `self.path`.
    fn emit_path(&mut self, t_slot: u32, ids: &[NodeId]) {
        self.path.clear();
        let mut cur = t_slot;
        loop {
            self.path.push(ids[cur as usize]);
            cur = self.parent[cur as usize];
            if cur == NO_SLOT {
                break;
            }
        }
        self.path.reverse();
    }
}

/// Outcome of an interleaved fetch-and-search ([`search_lm`] /
/// [`search_af`]). The node path of a successful search is left in
/// [`QueryScratch::path`].
#[derive(Debug, Clone)]
pub struct FetchOutcome {
    /// Path cost, or `None` if the destination is unreachable.
    pub cost: Option<Dist>,
    /// Node the source point snapped to.
    pub s_node: NodeId,
    /// Node the destination point snapped to.
    pub t_node: NodeId,
    /// Region fetches issued, including the two initial host regions (the
    /// LM page count / AF region count the fixed plan budgets against).
    pub fetches: u32,
}

/// Fetches `region`, counts the fetch, and folds the page into the arena
/// (idempotent per region — a duplicate fetch still counts, mirroring the
/// reference searches' unconditional `load`).
///
/// The closure hands back an `Arc` so callers that already hold decoded
/// pages — notably the plan-derivation probe loops, which revisit the same
/// regions across thousands of probes — satisfy a fetch with a reference
/// count bump instead of a decode (or a deep clone).
fn load_region(
    sub: &mut ClientSubgraph,
    region: u16,
    goal_flag: Option<usize>,
    fetches: &mut u32,
    fetch: &mut dyn FnMut(u16) -> Result<Arc<RegionData>>,
) -> Result<()> {
    let data = fetch(region)?;
    *fetches += 1;
    sub.add_region_ext(&data, goal_flag);
    Ok(())
}

/// The LM interleaved search (§4) on the CSR arena: A* under the stored
/// landmark lower bounds, fetching a region page whenever the frontier pops
/// a node whose record has not arrived yet.
///
/// Behaviourally identical — same snaps, same settle order, same fetch
/// sequence — to the retained `HashMap` implementation
/// [`crate::schemes::lm::reference::lm_search`]; the differential property
/// suite in `tests/leakage.rs` asserts answers and fetch counts match
/// exactly. Unlike the reference it allocates nothing in steady state: all
/// search state lives in the reusable `sub` arena and `scratch` buffers.
pub fn search_lm(
    sub: &mut ClientSubgraph,
    scratch: &mut QueryScratch,
    rs: u16,
    rt: u16,
    s: Point,
    t: Point,
    fetch: &mut dyn FnMut(u16) -> Result<Arc<RegionData>>,
) -> Result<FetchOutcome> {
    let mut fetches = 0u32;
    // Round-two fetches: both host regions (two fetches even if equal, per
    // the fixed plan).
    load_region(sub, rs, None, &mut fetches, fetch)?;
    load_region(sub, rt, None, &mut fetches, fetch)?;

    let s_node = sub
        .snap_first(rs, s)
        .ok_or_else(|| CoreError::Query("empty source region".into()))?;
    let t_node = sub
        .snap_first(rt, t)
        .ok_or_else(|| CoreError::Query("empty target region".into()))?;
    scratch.reset(sub.num_nodes());
    if s_node == t_node {
        scratch.path.push(s_node);
        return Ok(FetchOutcome {
            cost: Some(0),
            s_node,
            t_node,
            fetches,
        });
    }
    let s_slot = sub.slot_of[&s_node];
    let t_slot = sub.slot_of[&t_node];
    scratch.aux_key.extend_from_slice(sub.aux_of(t_slot));

    scratch.dist[s_slot as usize] = 0;
    let h0 = lm_bound(sub.aux_of(s_slot), &scratch.aux_key);
    scratch.lazy_push((h0, 0, s_slot), &sub.ids);
    let mut incumbent = Dist::MAX;

    while let Some((f, _, _)) = scratch.lazy_peek() {
        if incumbent != Dist::MAX && f >= incumbent {
            break; // admissible bounds: nothing better remains
        }
        let (_, gu, u) = scratch.lazy_pop(&sub.ids).expect("peeked");
        if gu > scratch.dist[u as usize] {
            continue; // stale
        }
        if !sub.has_record[u as usize] {
            let region = sub.region_of[u as usize];
            if region == NO_REGION {
                return Err(CoreError::Query(format!(
                    "no region hint for node {}",
                    sub.ids[u as usize]
                )));
            }
            load_region(sub, region, None, &mut fetches, fetch)?;
            scratch.ensure(sub.num_nodes());
            if !sub.has_record[u as usize] {
                return Err(CoreError::Query(format!(
                    "node {} missing after region fetch",
                    sub.ids[u as usize]
                )));
            }
            let hu = lm_bound(sub.aux_of(u), &scratch.aux_key);
            scratch.lazy_push((gu + hu, gu, u), &sub.ids);
            continue;
        }
        if u == t_slot {
            incumbent = incumbent.min(gu);
            continue;
        }
        sub.build_csr();
        let (lo, hi) = (
            sub.csr_offsets[u as usize] as usize,
            sub.csr_offsets[u as usize + 1] as usize,
        );
        for k in lo..hi {
            let v = sub.csr_heads[k];
            let nd = gu + Dist::from(sub.csr_weights[k]);
            if nd < scratch.dist[v as usize] {
                scratch.dist[v as usize] = nd;
                scratch.parent[v as usize] = u;
                let hv = lm_bound(sub.aux_of(v), &scratch.aux_key);
                scratch.lazy_push((nd + hv, nd, v), &sub.ids);
                if v == t_slot {
                    incumbent = incumbent.min(nd);
                }
            }
        }
    }

    if incumbent == Dist::MAX {
        return Ok(FetchOutcome {
            cost: None,
            s_node,
            t_node,
            fetches,
        });
    }
    scratch.emit_path(t_slot, &sub.ids);
    Ok(FetchOutcome {
        cost: Some(incumbent),
        s_node,
        t_node,
        fetches,
    })
}

/// The AF interleaved search (§4) on the CSR arena: Dijkstra over arcs
/// whose flag bit for the destination region `goal` is set (pruned arcs are
/// dropped at insertion), fetching a region whenever the frontier pops a
/// node whose record has not arrived.
///
/// Behaviourally identical to the retained `HashMap` implementation
/// [`crate::schemes::af::reference::af_search`]; see [`search_lm`] for the
/// equivalence contract.
pub fn search_af(
    sub: &mut ClientSubgraph,
    scratch: &mut QueryScratch,
    rs: u16,
    rt: u16,
    s: Point,
    t: Point,
    fetch: &mut dyn FnMut(u16) -> Result<Arc<RegionData>>,
) -> Result<FetchOutcome> {
    let goal = Some(rt as usize);
    let mut fetches = 0u32;
    load_region(sub, rs, goal, &mut fetches, fetch)?;
    load_region(sub, rt, goal, &mut fetches, fetch)?;

    let s_node = sub
        .snap_first(rs, s)
        .ok_or_else(|| CoreError::Query("empty source region".into()))?;
    let t_node = sub
        .snap_first(rt, t)
        .ok_or_else(|| CoreError::Query("empty target region".into()))?;
    scratch.reset(sub.num_nodes());
    if s_node == t_node {
        scratch.path.push(s_node);
        return Ok(FetchOutcome {
            cost: Some(0),
            s_node,
            t_node,
            fetches,
        });
    }
    let s_slot = sub.slot_of[&s_node];
    let t_slot = sub.slot_of[&t_node];
    scratch.dist[s_slot as usize] = 0;
    scratch.lazy_push((0, 0, s_slot), &sub.ids);
    let mut found = None;

    while let Some((gu, _, u)) = scratch.lazy_pop(&sub.ids) {
        if gu > scratch.dist[u as usize] {
            continue; // stale
        }
        if !sub.has_record[u as usize] {
            let region = sub.region_of[u as usize];
            if region == NO_REGION {
                return Err(CoreError::Query(format!(
                    "no region hint for node {}",
                    sub.ids[u as usize]
                )));
            }
            load_region(sub, region, goal, &mut fetches, fetch)?;
            scratch.ensure(sub.num_nodes());
            if !sub.has_record[u as usize] {
                return Err(CoreError::Query(format!(
                    "node {} missing after region fetch",
                    sub.ids[u as usize]
                )));
            }
            scratch.lazy_push((gu, 0, u), &sub.ids);
            continue;
        }
        if u == t_slot {
            found = Some(gu);
            break; // Dijkstra (no heuristic): first settle is optimal
        }
        sub.build_csr();
        let (lo, hi) = (
            sub.csr_offsets[u as usize] as usize,
            sub.csr_offsets[u as usize + 1] as usize,
        );
        for k in lo..hi {
            let v = sub.csr_heads[k];
            let nd = gu + Dist::from(sub.csr_weights[k]);
            if nd < scratch.dist[v as usize] {
                scratch.dist[v as usize] = nd;
                scratch.parent[v as usize] = u;
                scratch.lazy_push((nd, 0, v), &sub.ids);
            }
        }
    }

    let Some(cost) = found else {
        return Ok(FetchOutcome {
            cost: None,
            s_node,
            t_node,
            fetches,
        });
    };
    scratch.emit_path(t_slot, &sub.ids);
    Ok(FetchOutcome {
        cost: Some(cost),
        s_node,
        t_node,
        fetches,
    })
}

/// Reference implementations kept for differential tests and benchmarks: the
/// original `HashMap`-based client view that the CSR hot path replaced.
pub mod reference {
    use super::RegionData;
    use privpath_graph::types::{Dist, NodeId};
    use std::collections::HashMap;

    /// `HashMap`-adjacency client view with a `HashMap`-backed Dijkstra.
    #[derive(Debug, Default)]
    pub struct HashSubgraph {
        adj: HashMap<NodeId, Vec<(NodeId, u32)>>,
    }

    impl HashSubgraph {
        /// Empty view.
        pub fn new() -> Self {
            Self::default()
        }

        /// Merges a decoded region page (adjacency only).
        pub fn add_region(&mut self, data: &RegionData) {
            for n in &data.nodes {
                let entry = self.adj.entry(n.id).or_default();
                for a in &n.adj {
                    entry.push((a.to, a.w));
                }
            }
        }

        /// Merges subgraph edge triples.
        pub fn add_edges(&mut self, triples: &[(u32, u32, u32)]) {
            for &(u, v, w) in triples {
                self.adj.entry(u).or_default().push((v, w));
            }
        }

        /// Textbook lazy-deletion Dijkstra over hash maps.
        pub fn shortest_path(&self, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)> {
            use std::cmp::Reverse;
            use std::collections::BinaryHeap;
            let mut dist: HashMap<NodeId, Dist> = HashMap::new();
            let mut parent: HashMap<NodeId, NodeId> = HashMap::new();
            let mut heap: BinaryHeap<Reverse<(Dist, NodeId)>> = BinaryHeap::new();
            dist.insert(s, 0);
            heap.push(Reverse((0, s)));
            while let Some(Reverse((d, u))) = heap.pop() {
                if d > *dist.get(&u).unwrap_or(&Dist::MAX) {
                    continue;
                }
                if u == t {
                    let mut path = vec![t];
                    let mut cur = t;
                    while let Some(&p) = parent.get(&cur) {
                        path.push(p);
                        cur = p;
                    }
                    path.reverse();
                    return Some((d, path));
                }
                if let Some(arcs) = self.adj.get(&u) {
                    for &(v, w) in arcs {
                        let nd = d + Dist::from(w);
                        if nd < *dist.get(&v).unwrap_or(&Dist::MAX) {
                            dist.insert(v, nd);
                            parent.insert(v, u);
                            heap.push(Reverse((nd, v)));
                        }
                    }
                }
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::files::fd::{AdjEntry, NodeData};

    type TestNode = (u32, (i32, i32), Vec<(u32, u32)>);

    fn region(region: u16, nodes: Vec<TestNode>) -> RegionData {
        RegionData {
            region,
            nodes: nodes
                .into_iter()
                .map(|(id, (x, y), adj)| NodeData {
                    id,
                    pos: Point::new(x, y),
                    lm_vec: vec![],
                    adj: adj
                        .into_iter()
                        .map(|(to, w)| AdjEntry {
                            to,
                            w,
                            to_region: u16::MAX,
                            flags: vec![],
                        })
                        .collect(),
                })
                .collect(),
        }
    }

    #[test]
    fn path_across_regions() {
        let mut g = ClientSubgraph::new();
        g.add_region(&region(
            0,
            vec![(0, (0, 0), vec![(1, 5)]), (1, (1, 0), vec![(0, 5), (2, 7)])],
        ));
        g.add_region(&region(1, vec![(2, (2, 0), vec![(1, 7)])]));
        let (cost, path) = g.shortest_path(0, 2).unwrap();
        assert_eq!(cost, 12);
        assert_eq!(path, vec![0, 1, 2]);
    }

    #[test]
    fn unreachable_is_none() {
        let mut g = ClientSubgraph::new();
        g.add_region(&region(0, vec![(0, (0, 0), vec![])]));
        g.add_region(&region(1, vec![(9, (9, 9), vec![])]));
        assert!(g.shortest_path(0, 9).is_none());
    }

    #[test]
    fn extra_edges_from_subgraph_records() {
        let mut g = ClientSubgraph::new();
        g.add_region(&region(
            0,
            vec![(0, (0, 0), vec![(1, 100)]), (1, (5, 0), vec![])],
        ));
        // A cheaper connection arrives via G_st triples.
        g.add_edges(&[(0, 2, 1), (2, 1, 1)]);
        let (cost, path) = g.shortest_path(0, 1).unwrap();
        assert_eq!(cost, 2);
        assert_eq!(path, vec![0, 2, 1]);
    }

    #[test]
    fn duplicate_edges_are_harmless() {
        let mut g = ClientSubgraph::new();
        g.add_region(&region(
            0,
            vec![(0, (0, 0), vec![(1, 3)]), (1, (1, 1), vec![])],
        ));
        g.add_edges(&[(0, 1, 3), (0, 1, 3)]);
        let (cost, _) = g.shortest_path(0, 1).unwrap();
        assert_eq!(cost, 3);
    }

    #[test]
    fn snapping_picks_nearest_in_region() {
        let mut g = ClientSubgraph::new();
        g.add_region(&region(
            3,
            vec![
                (10, (0, 0), vec![]),
                (11, (100, 100), vec![]),
                (12, (10, 10), vec![]),
            ],
        ));
        assert_eq!(g.snap(3, Point::new(9, 9)), Some(12));
        assert_eq!(g.snap(3, Point::new(-5, 0)), Some(10));
        assert_eq!(g.snap(4, Point::new(0, 0)), None);
    }

    #[test]
    fn trivial_same_node() {
        let mut g = ClientSubgraph::new();
        g.add_region(&region(0, vec![(7, (0, 0), vec![])]));
        let (cost, path) = g.shortest_path(7, 7).unwrap();
        assert_eq!(cost, 0);
        assert_eq!(path, vec![7]);
    }

    #[test]
    fn clear_keeps_capacity_and_resets_view() {
        let mut g = ClientSubgraph::new();
        let mut scratch = QueryScratch::new();
        g.add_region(&region(
            0,
            vec![(0, (0, 0), vec![(1, 5)]), (1, (1, 0), vec![])],
        ));
        assert_eq!(g.shortest_path_in(&mut scratch, 0, 1), Some(5));
        g.clear();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.snap(0, Point::new(0, 0)), None);
        // Same ids, different topology: stale state must not leak through.
        g.add_region(&region(
            0,
            vec![(0, (0, 0), vec![(1, 9)]), (1, (1, 0), vec![])],
        ));
        assert_eq!(g.shortest_path_in(&mut scratch, 0, 1), Some(9));
        assert_eq!(scratch.path, vec![0, 1]);
    }

    #[test]
    fn csr_rebuilds_after_incremental_edges() {
        let mut g = ClientSubgraph::new();
        g.add_region(&region(
            0,
            vec![(0, (0, 0), vec![(1, 50)]), (1, (1, 0), vec![])],
        ));
        assert_eq!(g.shortest_path(0, 1).unwrap().0, 50);
        // Arcs arriving after a solve must be folded into the next CSR.
        g.add_edges(&[(0, 1, 2)]);
        assert_eq!(g.shortest_path(0, 1).unwrap().0, 2);
    }

    #[test]
    fn matches_reference_on_dense_random_views() {
        use super::reference::HashSubgraph;
        // Deterministic pseudo-random multigraphs, compared edge-for-edge.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..20 {
            let n = 2 + (next() % 40) as u32;
            let m = (next() % 200) as usize;
            let triples: Vec<(u32, u32, u32)> = (0..m)
                .map(|_| {
                    (
                        next() as u32 % n,
                        next() as u32 % n,
                        1 + (next() as u32 % 1000),
                    )
                })
                .collect();
            let mut csr = ClientSubgraph::new();
            csr.add_edges(&triples);
            let mut href = HashSubgraph::new();
            href.add_edges(&triples);
            let (s, t) = (next() as u32 % n, next() as u32 % n);
            if s == t {
                // The reference treats an unknown s == t as a zero-cost hit;
                // the interned view reports it unreachable. Not comparable.
                continue;
            }
            let got = csr.shortest_path(s, t).map(|(c, _)| c);
            let want = href.shortest_path(s, t).map(|(c, _)| c);
            assert_eq!(
                got, want,
                "round {round}: sp({s},{t}) over {m} arcs on {n} nodes"
            );
        }
    }
}
