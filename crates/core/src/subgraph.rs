//! Client-side subgraph assembly and shortest-path computation.
//!
//! After the PIR rounds, the client holds a set of region pages (and, for
//! PI-family schemes, a decoded subgraph `G_st`). "Upon receipt of these
//! data, she possesses a subgraph of G that is guaranteed to contain the
//! desired shortest path. SP(s, t) is computed using Dijkstra's algorithm in
//! this subgraph" (§5.4).
//!
//! This is the client hot path, so it is engineered to be allocation-free in
//! steady state: node ids are interned into a dense range, adjacency is a
//! CSR (compressed sparse row) built by counting sort, and Dijkstra runs
//! over dense arrays with an indexed binary heap (decrease-key, no stale
//! entries). All buffers live in the [`ClientSubgraph`] and [`QueryScratch`]
//! and are cleared — not reallocated — between queries, so a long-running
//! [`crate::engine::QuerySession`] touches the allocator only while its
//! high-water marks still grow.

use crate::files::fd::RegionData;
use privpath_graph::types::{Dist, NodeId, Point};
use std::collections::HashMap;

/// Sentinel for "no dense slot".
const NO_SLOT: u32 = u32::MAX;

/// The client's partial view of the network, interned into dense node slots.
///
/// Accumulate pages with [`add_region`](Self::add_region) /
/// [`add_edges`](Self::add_edges), then solve with
/// [`shortest_path_in`](Self::shortest_path_in). [`clear`](Self::clear)
/// resets the view for the next query while keeping every buffer's capacity.
#[derive(Debug, Default)]
pub struct ClientSubgraph {
    /// External node id → dense slot (cleared per query, capacity kept).
    slot_of: HashMap<NodeId, u32>,
    /// Dense slot → external node id.
    ids: Vec<NodeId>,
    /// Dense slot → coordinates (meaningful only for region-page nodes;
    /// edge-only nodes keep the origin placeholder and are never snapped
    /// because `snap` walks region members exclusively).
    coords: Vec<Point>,
    /// Accumulated arcs as dense `(tail, head, weight)` triples.
    arcs: Vec<(u32, u32, u32)>,
    /// Contiguous per-region membership runs: `(region, start, end)` into
    /// `members`.
    region_runs: Vec<(u16, u32, u32)>,
    /// Dense slots of region members, grouped per `region_runs` entry.
    members: Vec<u32>,
    /// CSR row offsets (`num_nodes + 1` entries once built).
    csr_offsets: Vec<u32>,
    /// CSR column (head slot) array.
    csr_heads: Vec<u32>,
    /// CSR weight array, parallel to `csr_heads`.
    csr_weights: Vec<u32>,
    /// Arc count already folded into the CSR (the CSR is rebuilt only when
    /// new arcs arrived since).
    csr_arcs: usize,
}

impl ClientSubgraph {
    /// Empty subgraph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forgets all nodes, arcs and regions, keeping allocated capacity.
    pub fn clear(&mut self) {
        self.slot_of.clear();
        self.ids.clear();
        self.coords.clear();
        self.arcs.clear();
        self.region_runs.clear();
        self.members.clear();
        self.csr_offsets.clear();
        self.csr_heads.clear();
        self.csr_weights.clear();
        self.csr_arcs = 0;
    }

    /// Number of interned nodes.
    pub fn num_nodes(&self) -> usize {
        self.ids.len()
    }

    fn intern(&mut self, id: NodeId) -> u32 {
        let next = self.ids.len() as u32;
        let slot = *self.slot_of.entry(id).or_insert(next);
        if slot == next {
            self.ids.push(id);
            self.coords.push(Point::new(0, 0));
        }
        slot
    }

    /// Merges a decoded region page.
    pub fn add_region(&mut self, data: &RegionData) {
        let start = self.members.len() as u32;
        for n in &data.nodes {
            let u = self.intern(n.id);
            self.coords[u as usize] = n.pos;
            self.members.push(u);
            for a in &n.adj {
                let v = self.intern(a.to);
                self.arcs.push((u, v, a.w));
            }
        }
        self.region_runs
            .push((data.region, start, self.members.len() as u32));
    }

    /// Merges subgraph edge triples (PI family).
    pub fn add_edges(&mut self, triples: &[(u32, u32, u32)]) {
        for &(u, v, w) in triples {
            let du = self.intern(u);
            let dv = self.intern(v);
            self.arcs.push((du, dv, w));
        }
    }

    /// Snaps a query point to the nearest node of `region` ("our
    /// contributions apply to query sources/destinations that lie anywhere
    /// on the road network", §3.1 — we snap within the host region).
    pub fn snap(&self, region: u16, p: Point) -> Option<NodeId> {
        let mut best: Option<(i128, NodeId)> = None;
        for &(r, start, end) in &self.region_runs {
            if r != region {
                continue;
            }
            for &u in &self.members[start as usize..end as usize] {
                let d = self.coords[u as usize].dist2(&p);
                let key = (d, self.ids[u as usize]);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        best.map(|(_, id)| id)
    }

    /// (Re)builds the CSR adjacency from the accumulated arcs by counting
    /// sort. Idempotent: a no-op unless arcs arrived since the last build.
    fn build_csr(&mut self) {
        let n = self.ids.len();
        if self.csr_arcs == self.arcs.len() && self.csr_offsets.len() == n + 1 {
            return;
        }
        let m = self.arcs.len();
        self.csr_offsets.clear();
        self.csr_offsets.resize(n + 1, 0);
        for &(u, _, _) in &self.arcs {
            self.csr_offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            self.csr_offsets[i + 1] += self.csr_offsets[i];
        }
        self.csr_heads.clear();
        self.csr_heads.resize(m, 0);
        self.csr_weights.clear();
        self.csr_weights.resize(m, 0);
        // Scatter using the offsets as cursors, then restore them by shifting
        // (after the scatter, offsets[u] holds the end of row u).
        for &(u, v, w) in &self.arcs {
            let at = self.csr_offsets[u as usize] as usize;
            self.csr_heads[at] = v;
            self.csr_weights[at] = w;
            self.csr_offsets[u as usize] += 1;
        }
        for i in (1..=n).rev() {
            self.csr_offsets[i] = self.csr_offsets[i - 1];
        }
        self.csr_offsets[0] = 0;
        self.csr_arcs = m;
    }

    /// Dijkstra from `s` to `t` over the assembled view, using (and
    /// populating) `scratch`. Returns the cost, or `None` if `t` is
    /// unreachable; on success the node path is in
    /// [`QueryScratch::path`].
    pub fn shortest_path_in(
        &mut self,
        scratch: &mut QueryScratch,
        s: NodeId,
        t: NodeId,
    ) -> Option<Dist> {
        self.build_csr();
        let (&s_slot, &t_slot) = (self.slot_of.get(&s)?, self.slot_of.get(&t)?);
        let n = self.ids.len();
        scratch.reset(n);
        scratch.dist[s_slot as usize] = 0;
        scratch.heap_push(s_slot, &self.ids);
        while let Some(u) = scratch.heap_pop(&self.ids) {
            if u == t_slot {
                scratch.emit_path(t_slot, &self.ids);
                return Some(scratch.dist[t_slot as usize]);
            }
            let du = scratch.dist[u as usize];
            let (lo, hi) = (
                self.csr_offsets[u as usize] as usize,
                self.csr_offsets[u as usize + 1] as usize,
            );
            for k in lo..hi {
                let v = self.csr_heads[k];
                let nd = du + Dist::from(self.csr_weights[k]);
                if nd < scratch.dist[v as usize] {
                    scratch.dist[v as usize] = nd;
                    scratch.parent[v as usize] = u;
                    if scratch.heap_pos[v as usize] == NO_SLOT {
                        scratch.heap_push(v, &self.ids);
                    } else {
                        scratch.heap_decrease(v, &self.ids);
                    }
                }
            }
        }
        None
    }

    /// Convenience wrapper over [`shortest_path_in`](Self::shortest_path_in)
    /// with a throwaway scratch: returns `(cost, node path)` or `None` if
    /// `t` is unreachable in the view.
    pub fn shortest_path(&mut self, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)> {
        let mut scratch = QueryScratch::new();
        let cost = self.shortest_path_in(&mut scratch, s, t)?;
        Some((cost, scratch.path.clone()))
    }
}

/// Reusable solver state for the client Dijkstra: distance / parent arrays,
/// the indexed binary heap, and the output path buffer. One instance lives
/// in each [`crate::engine::QuerySession`]; between queries it is cleared,
/// never reallocated (capacity ratchets up to the high-water mark).
#[derive(Debug, Default)]
pub struct QueryScratch {
    /// Tentative distances per dense slot.
    dist: Vec<Dist>,
    /// Dijkstra tree parent per dense slot (`NO_SLOT` = none).
    parent: Vec<u32>,
    /// Binary min-heap of dense slots, keyed by `dist` (ties broken by
    /// external id for a canonical settle order).
    heap: Vec<u32>,
    /// Position of each slot in `heap` (`NO_SLOT` = not enqueued).
    heap_pos: Vec<u32>,
    /// Node path of the last successful query (external ids, source first).
    pub path: Vec<NodeId>,
}

impl QueryScratch {
    /// Fresh scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Prepares the buffers for a graph of `n` dense slots.
    fn reset(&mut self, n: usize) {
        self.dist.clear();
        self.dist.resize(n, Dist::MAX);
        self.parent.clear();
        self.parent.resize(n, NO_SLOT);
        self.heap.clear();
        self.heap_pos.clear();
        self.heap_pos.resize(n, NO_SLOT);
        self.path.clear();
    }

    /// `true` if slot `a` orders before slot `b` (min-heap key).
    fn less(&self, a: u32, b: u32, ids: &[NodeId]) -> bool {
        (self.dist[a as usize], ids[a as usize]) < (self.dist[b as usize], ids[b as usize])
    }

    fn heap_swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.heap_pos[self.heap[i] as usize] = i as u32;
        self.heap_pos[self.heap[j] as usize] = j as u32;
    }

    fn sift_up(&mut self, mut i: usize, ids: &[NodeId]) {
        while i > 0 {
            let up = (i - 1) / 2;
            if !self.less(self.heap[i], self.heap[up], ids) {
                break;
            }
            self.heap_swap(i, up);
            i = up;
        }
    }

    fn sift_down(&mut self, mut i: usize, ids: &[NodeId]) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len() && self.less(self.heap[l], self.heap[best], ids) {
                best = l;
            }
            if r < self.heap.len() && self.less(self.heap[r], self.heap[best], ids) {
                best = r;
            }
            if best == i {
                break;
            }
            self.heap_swap(i, best);
            i = best;
        }
    }

    fn heap_push(&mut self, slot: u32, ids: &[NodeId]) {
        debug_assert_eq!(self.heap_pos[slot as usize], NO_SLOT);
        self.heap_pos[slot as usize] = self.heap.len() as u32;
        self.heap.push(slot);
        self.sift_up(self.heap.len() - 1, ids);
    }

    fn heap_decrease(&mut self, slot: u32, ids: &[NodeId]) {
        let i = self.heap_pos[slot as usize];
        debug_assert_ne!(i, NO_SLOT);
        self.sift_up(i as usize, ids);
    }

    fn heap_pop(&mut self, ids: &[NodeId]) -> Option<u32> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.len() - 1;
        self.heap_swap(0, last);
        self.heap.pop();
        self.heap_pos[top as usize] = NO_SLOT;
        if !self.heap.is_empty() {
            self.sift_down(0, ids);
        }
        Some(top)
    }

    /// Walks parents from `t_slot` and writes the external-id path (source
    /// first) into `self.path`.
    fn emit_path(&mut self, t_slot: u32, ids: &[NodeId]) {
        self.path.clear();
        let mut cur = t_slot;
        loop {
            self.path.push(ids[cur as usize]);
            cur = self.parent[cur as usize];
            if cur == NO_SLOT {
                break;
            }
        }
        self.path.reverse();
    }
}

/// Reference implementations kept for differential tests and benchmarks: the
/// original `HashMap`-based client view that the CSR hot path replaced.
pub mod reference {
    use super::RegionData;
    use privpath_graph::types::{Dist, NodeId};
    use std::collections::HashMap;

    /// `HashMap`-adjacency client view with a `HashMap`-backed Dijkstra.
    #[derive(Debug, Default)]
    pub struct HashSubgraph {
        adj: HashMap<NodeId, Vec<(NodeId, u32)>>,
    }

    impl HashSubgraph {
        /// Empty view.
        pub fn new() -> Self {
            Self::default()
        }

        /// Merges a decoded region page (adjacency only).
        pub fn add_region(&mut self, data: &RegionData) {
            for n in &data.nodes {
                let entry = self.adj.entry(n.id).or_default();
                for a in &n.adj {
                    entry.push((a.to, a.w));
                }
            }
        }

        /// Merges subgraph edge triples.
        pub fn add_edges(&mut self, triples: &[(u32, u32, u32)]) {
            for &(u, v, w) in triples {
                self.adj.entry(u).or_default().push((v, w));
            }
        }

        /// Textbook lazy-deletion Dijkstra over hash maps.
        pub fn shortest_path(&self, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)> {
            use std::cmp::Reverse;
            use std::collections::BinaryHeap;
            let mut dist: HashMap<NodeId, Dist> = HashMap::new();
            let mut parent: HashMap<NodeId, NodeId> = HashMap::new();
            let mut heap: BinaryHeap<Reverse<(Dist, NodeId)>> = BinaryHeap::new();
            dist.insert(s, 0);
            heap.push(Reverse((0, s)));
            while let Some(Reverse((d, u))) = heap.pop() {
                if d > *dist.get(&u).unwrap_or(&Dist::MAX) {
                    continue;
                }
                if u == t {
                    let mut path = vec![t];
                    let mut cur = t;
                    while let Some(&p) = parent.get(&cur) {
                        path.push(p);
                        cur = p;
                    }
                    path.reverse();
                    return Some((d, path));
                }
                if let Some(arcs) = self.adj.get(&u) {
                    for &(v, w) in arcs {
                        let nd = d + Dist::from(w);
                        if nd < *dist.get(&v).unwrap_or(&Dist::MAX) {
                            dist.insert(v, nd);
                            parent.insert(v, u);
                            heap.push(Reverse((nd, v)));
                        }
                    }
                }
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::files::fd::{AdjEntry, NodeData};

    type TestNode = (u32, (i32, i32), Vec<(u32, u32)>);

    fn region(region: u16, nodes: Vec<TestNode>) -> RegionData {
        RegionData {
            region,
            nodes: nodes
                .into_iter()
                .map(|(id, (x, y), adj)| NodeData {
                    id,
                    pos: Point::new(x, y),
                    lm_vec: vec![],
                    adj: adj
                        .into_iter()
                        .map(|(to, w)| AdjEntry {
                            to,
                            w,
                            to_region: u16::MAX,
                            flags: vec![],
                        })
                        .collect(),
                })
                .collect(),
        }
    }

    #[test]
    fn path_across_regions() {
        let mut g = ClientSubgraph::new();
        g.add_region(&region(
            0,
            vec![(0, (0, 0), vec![(1, 5)]), (1, (1, 0), vec![(0, 5), (2, 7)])],
        ));
        g.add_region(&region(1, vec![(2, (2, 0), vec![(1, 7)])]));
        let (cost, path) = g.shortest_path(0, 2).unwrap();
        assert_eq!(cost, 12);
        assert_eq!(path, vec![0, 1, 2]);
    }

    #[test]
    fn unreachable_is_none() {
        let mut g = ClientSubgraph::new();
        g.add_region(&region(0, vec![(0, (0, 0), vec![])]));
        g.add_region(&region(1, vec![(9, (9, 9), vec![])]));
        assert!(g.shortest_path(0, 9).is_none());
    }

    #[test]
    fn extra_edges_from_subgraph_records() {
        let mut g = ClientSubgraph::new();
        g.add_region(&region(
            0,
            vec![(0, (0, 0), vec![(1, 100)]), (1, (5, 0), vec![])],
        ));
        // A cheaper connection arrives via G_st triples.
        g.add_edges(&[(0, 2, 1), (2, 1, 1)]);
        let (cost, path) = g.shortest_path(0, 1).unwrap();
        assert_eq!(cost, 2);
        assert_eq!(path, vec![0, 2, 1]);
    }

    #[test]
    fn duplicate_edges_are_harmless() {
        let mut g = ClientSubgraph::new();
        g.add_region(&region(
            0,
            vec![(0, (0, 0), vec![(1, 3)]), (1, (1, 1), vec![])],
        ));
        g.add_edges(&[(0, 1, 3), (0, 1, 3)]);
        let (cost, _) = g.shortest_path(0, 1).unwrap();
        assert_eq!(cost, 3);
    }

    #[test]
    fn snapping_picks_nearest_in_region() {
        let mut g = ClientSubgraph::new();
        g.add_region(&region(
            3,
            vec![
                (10, (0, 0), vec![]),
                (11, (100, 100), vec![]),
                (12, (10, 10), vec![]),
            ],
        ));
        assert_eq!(g.snap(3, Point::new(9, 9)), Some(12));
        assert_eq!(g.snap(3, Point::new(-5, 0)), Some(10));
        assert_eq!(g.snap(4, Point::new(0, 0)), None);
    }

    #[test]
    fn trivial_same_node() {
        let mut g = ClientSubgraph::new();
        g.add_region(&region(0, vec![(7, (0, 0), vec![])]));
        let (cost, path) = g.shortest_path(7, 7).unwrap();
        assert_eq!(cost, 0);
        assert_eq!(path, vec![7]);
    }

    #[test]
    fn clear_keeps_capacity_and_resets_view() {
        let mut g = ClientSubgraph::new();
        let mut scratch = QueryScratch::new();
        g.add_region(&region(
            0,
            vec![(0, (0, 0), vec![(1, 5)]), (1, (1, 0), vec![])],
        ));
        assert_eq!(g.shortest_path_in(&mut scratch, 0, 1), Some(5));
        g.clear();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.snap(0, Point::new(0, 0)), None);
        // Same ids, different topology: stale state must not leak through.
        g.add_region(&region(
            0,
            vec![(0, (0, 0), vec![(1, 9)]), (1, (1, 0), vec![])],
        ));
        assert_eq!(g.shortest_path_in(&mut scratch, 0, 1), Some(9));
        assert_eq!(scratch.path, vec![0, 1]);
    }

    #[test]
    fn csr_rebuilds_after_incremental_edges() {
        let mut g = ClientSubgraph::new();
        g.add_region(&region(
            0,
            vec![(0, (0, 0), vec![(1, 50)]), (1, (1, 0), vec![])],
        ));
        assert_eq!(g.shortest_path(0, 1).unwrap().0, 50);
        // Arcs arriving after a solve must be folded into the next CSR.
        g.add_edges(&[(0, 1, 2)]);
        assert_eq!(g.shortest_path(0, 1).unwrap().0, 2);
    }

    #[test]
    fn matches_reference_on_dense_random_views() {
        use super::reference::HashSubgraph;
        // Deterministic pseudo-random multigraphs, compared edge-for-edge.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..20 {
            let n = 2 + (next() % 40) as u32;
            let m = (next() % 200) as usize;
            let triples: Vec<(u32, u32, u32)> = (0..m)
                .map(|_| {
                    (
                        next() as u32 % n,
                        next() as u32 % n,
                        1 + (next() as u32 % 1000),
                    )
                })
                .collect();
            let mut csr = ClientSubgraph::new();
            csr.add_edges(&triples);
            let mut href = HashSubgraph::new();
            href.add_edges(&triples);
            let (s, t) = (next() as u32 % n, next() as u32 % n);
            if s == t {
                // The reference treats an unknown s == t as a zero-cost hit;
                // the interned view reports it unreachable. Not comparable.
                continue;
            }
            let got = csr.shortest_path(s, t).map(|(c, _)| c);
            let want = href.shortest_path(s, t).map(|(c, _)| c);
            assert_eq!(
                got, want,
                "round {round}: sp({s},{t}) over {m} arcs on {n} nodes"
            );
        }
    }
}
