//! End-to-end tests: every scheme must return optimal shortest-path costs
//! through the full PIR protocol, and every query must be indistinguishable
//! from every other (Theorem 1).

use privpath_core::audit::assert_indistinguishable;
use privpath_core::config::BuildConfig;
use privpath_core::engine::{Engine, SchemeKind};
use privpath_graph::dijkstra::{distance, INFINITY};
use privpath_graph::gen::{road_like, RoadGenConfig};
use privpath_graph::network::RoadNetwork;
use privpath_pir::PirMode;

fn test_net(nodes: usize, seed: u64) -> RoadNetwork {
    road_like(&RoadGenConfig {
        nodes,
        seed,
        extra_edge_frac: 0.15,
        ..Default::default()
    })
}

fn small_cfg() -> BuildConfig {
    let mut cfg = BuildConfig::default();
    // Small pages so a few-hundred-node network still yields many regions.
    cfg.spec.page_size = 512;
    cfg.plan_sample = 0; // exhaustive plan derivation (paper's method)
    cfg
}

fn query_pairs(net: &RoadNetwork, count: usize) -> Vec<(u32, u32)> {
    let n = net.num_nodes() as u32;
    (0..count as u32)
        .map(|k| ((k * 131 + 7) % n, (k * 277 + 83) % n))
        .collect()
}

fn check_scheme(kind: SchemeKind, cfg: &BuildConfig, nodes: usize, seed: u64, queries: usize) {
    let net = test_net(nodes, seed);
    let mut engine = Engine::build(&net, kind, cfg)
        .unwrap_or_else(|e| panic!("{} build failed: {e}", kind.name()));
    let mut traces = Vec::new();
    for (s, t) in query_pairs(&net, queries) {
        let out = engine
            .query_nodes(&net, s, t)
            .unwrap_or_else(|e| panic!("{} query {s}->{t} failed: {e}", kind.name()));
        assert!(
            !out.plan_violation,
            "{}: plan violation for {s}->{t}",
            kind.name()
        );
        let want = distance(&net, s, t);
        let got = out.answer.cost.unwrap_or(INFINITY);
        assert_eq!(got, want, "{}: wrong cost for {s}->{t}", kind.name());
        assert_eq!(
            out.answer.src_node,
            s,
            "{}: snapped to wrong source",
            kind.name()
        );
        assert_eq!(
            out.answer.dst_node,
            t,
            "{}: snapped to wrong target",
            kind.name()
        );
        traces.push(out.trace);
    }
    assert_indistinguishable(&traces)
        .unwrap_or_else(|e| panic!("{}: queries distinguishable: {e}", kind.name()));
}

#[test]
fn ci_returns_optimal_costs_and_uniform_traces() {
    check_scheme(SchemeKind::Ci, &small_cfg(), 350, 101, 25);
}

#[test]
fn pi_returns_optimal_costs_and_uniform_traces() {
    check_scheme(SchemeKind::Pi, &small_cfg(), 350, 102, 25);
}

#[test]
fn pistar_returns_optimal_costs_and_uniform_traces() {
    let mut cfg = small_cfg();
    cfg.cluster_pages = 3;
    check_scheme(SchemeKind::PiStar, &cfg, 350, 103, 25);
}

#[test]
fn hy_returns_optimal_costs_and_uniform_traces() {
    let mut cfg = small_cfg();
    cfg.hy_threshold = Some(4); // force a mix of sets and subgraphs
    check_scheme(SchemeKind::Hy, &cfg, 350, 104, 25);
}

#[test]
fn hy_auto_threshold_works() {
    let mut cfg = small_cfg();
    cfg.hy_threshold = None;
    check_scheme(SchemeKind::Hy, &cfg, 250, 105, 15);
}

#[test]
fn lm_returns_optimal_costs_and_uniform_traces() {
    let mut cfg = small_cfg();
    cfg.landmarks = 4;
    check_scheme(SchemeKind::Lm, &cfg, 250, 106, 20);
}

#[test]
fn af_returns_optimal_costs_and_uniform_traces() {
    let mut cfg = small_cfg();
    cfg.af_regions = 8;
    check_scheme(SchemeKind::Af, &cfg, 250, 107, 20);
}

#[test]
fn obf_returns_optimal_costs_via_unified_api() {
    // OBF has no PIR trace guarantee (its leakage is the candidate sets),
    // but it builds and queries through the same Database/QuerySession API
    // and must return optimal costs.
    let net = test_net(250, 114);
    let mut cfg = small_cfg();
    cfg.obf_decoys = 6;
    let mut engine = Engine::build(&net, SchemeKind::Obf, &cfg).unwrap();
    for (s, t) in query_pairs(&net, 12) {
        let out = engine.query_nodes(&net, s, t).unwrap();
        let want = distance(&net, s, t);
        assert_eq!(out.answer.cost.unwrap_or(INFINITY), want, "OBF {s}->{t}");
        assert_eq!(out.meter.total_fetches(), 0, "OBF performs no PIR fetches");
        assert!(out.meter.server_s > 0.0, "OBF charges server compute");
    }
}

#[test]
fn ci_without_compression_still_correct() {
    let mut cfg = small_cfg();
    cfg.compress_index = false;
    check_scheme(SchemeKind::Ci, &cfg, 300, 108, 15);
}

#[test]
fn ci_with_plain_partition_still_correct() {
    let mut cfg = small_cfg();
    cfg.packed_partition = false;
    check_scheme(SchemeKind::Ci, &cfg, 300, 109, 15);
}

#[test]
fn functional_pir_backends_agree_with_cost_only() {
    for mode in [PirMode::LinearScan, PirMode::Shuffled { seed: 5 }] {
        let mut cfg = small_cfg();
        cfg.pir_mode = mode;
        check_scheme(SchemeKind::Ci, &cfg, 200, 110, 8);
    }
}

#[test]
fn db_sizes_are_ordered_ci_smallest() {
    // Table 3 / Figure 7(b): PI's database dwarfs CI's.
    let net = test_net(400, 111);
    let cfg = small_cfg();
    let ci = Engine::build(&net, SchemeKind::Ci, &cfg).unwrap();
    let pi = Engine::build(&net, SchemeKind::Pi, &cfg).unwrap();
    assert!(
        pi.db_bytes() > ci.db_bytes(),
        "PI ({}) should outweigh CI ({})",
        pi.db_bytes(),
        ci.db_bytes()
    );
}

#[test]
fn pi_fetches_fewer_pages_than_ci() {
    // Table 3: CI incurs many more PIR accesses than PI.
    let net = test_net(400, 112);
    let cfg = small_cfg();
    let mut ci = Engine::build(&net, SchemeKind::Ci, &cfg).unwrap();
    let mut pi = Engine::build(&net, SchemeKind::Pi, &cfg).unwrap();
    let (s, t) = (0u32, (net.num_nodes() - 1) as u32);
    let ci_out = ci.query_nodes(&net, s, t).unwrap();
    let pi_out = pi.query_nodes(&net, s, t).unwrap();
    assert!(
        pi_out.meter.total_fetches() < ci_out.meter.total_fetches(),
        "PI fetched {} pages, CI fetched {}",
        pi_out.meter.total_fetches(),
        ci_out.meter.total_fetches()
    );
}

#[test]
fn same_query_twice_is_indistinguishable_and_consistent() {
    let net = test_net(300, 113);
    let mut engine = Engine::build(&net, SchemeKind::Ci, &small_cfg()).unwrap();
    let a = engine.query_nodes(&net, 3, 250).unwrap();
    let b = engine.query_nodes(&net, 3, 250).unwrap();
    assert_eq!(a.answer.cost, b.answer.cost);
    assert_eq!(a.trace, b.trace);
}
