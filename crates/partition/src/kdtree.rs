//! The KD-tree structure shared by both partitioning constructions.
//!
//! The tree "can be represented simply by the splitting coordinate (either on
//! the x or y axis) used in every node" (§5.1) — this is exactly what the
//! header file `Fh` serializes, so clients can map any Euclidean point to its
//! region without knowing node or region identifiers.

use privpath_graph::types::Point;
use privpath_storage::{ByteReader, ByteWriter, StorageError};

/// Region identifier — the index of a KD-tree leaf in left-to-right order.
pub type RegionId = u16;

/// One KD-tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KdNode {
    /// Internal split: points with `2·coord(axis) < coord2` go left.
    /// `coord2` is an odd *doubled* coordinate so no integer-coordinate point
    /// ever lies on the line.
    Split {
        /// 0 = x, 1 = y.
        axis: u8,
        /// Doubled split coordinate (odd).
        coord2: i64,
        /// Index of the left child in the node array.
        left: u32,
        /// Index of the right child.
        right: u32,
    },
    /// Leaf — a region.
    Leaf {
        /// The region id.
        region: RegionId,
    },
}

/// A KD-tree over the plane. Node 0 is the root (for non-empty trees).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KdTree {
    nodes: Vec<KdNode>,
    num_regions: u16,
}

impl KdTree {
    /// Builds a tree from a node array produced by a partition builder.
    ///
    /// # Panics
    /// Panics if child indices are out of range or region ids are not the
    /// compact range `0..num_regions` in left-to-right leaf order.
    pub fn from_nodes(nodes: Vec<KdNode>) -> KdTree {
        assert!(!nodes.is_empty(), "tree must have at least one leaf");
        let mut next_region: u16 = 0;
        // Validate reachability and region numbering with an explicit DFS.
        let mut stack = vec![0u32];
        let mut visited = vec![false; nodes.len()];
        // In-order (left-first) traversal to check leaf numbering.
        fn walk(nodes: &[KdNode], idx: u32, visited: &mut [bool], next_region: &mut u16) {
            assert!(!visited[idx as usize], "node {idx} reachable twice");
            visited[idx as usize] = true;
            match nodes[idx as usize] {
                KdNode::Leaf { region } => {
                    assert_eq!(
                        region, *next_region,
                        "leaf regions must be numbered in DFS order"
                    );
                    *next_region += 1;
                }
                KdNode::Split {
                    left,
                    right,
                    coord2,
                    ..
                } => {
                    assert!(
                        coord2 % 2 != 0,
                        "split coordinates must be odd doubled values"
                    );
                    walk(nodes, left, visited, next_region);
                    walk(nodes, right, visited, next_region);
                }
            }
        }
        stack.clear();
        walk(&nodes, 0, &mut visited, &mut next_region);
        assert!(
            visited.iter().all(|&v| v),
            "unreachable nodes in tree array"
        );
        KdTree {
            num_regions: next_region,
            nodes,
        }
    }

    /// A single-region tree (the whole plane).
    pub fn single_region() -> KdTree {
        KdTree {
            nodes: vec![KdNode::Leaf { region: 0 }],
            num_regions: 1,
        }
    }

    /// Number of regions (leaves).
    pub fn num_regions(&self) -> u16 {
        self.num_regions
    }

    /// The node array (used by the border clipper).
    pub fn nodes(&self) -> &[KdNode] {
        &self.nodes
    }

    /// Maps a point to its region: descend comparing doubled coordinates.
    pub fn region_of(&self, p: Point) -> RegionId {
        let mut idx = 0u32;
        loop {
            match self.nodes[idx as usize] {
                KdNode::Leaf { region } => return region,
                KdNode::Split {
                    axis,
                    coord2,
                    left,
                    right,
                } => {
                    idx = if 2 * i64::from(p.coord(axis)) < coord2 {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Serializes the tree in pre-order: `u32 node count`, then per node
    /// either `0u8, axis u8, coord2 i64` (split) or `1u8` (leaf). Children
    /// follow implicitly in pre-order, and leaves are numbered left-to-right
    /// on decode — exactly the concise form §5.1 calls for.
    pub fn serialize(&self, w: &mut ByteWriter) {
        w.u32(self.nodes.len() as u32);
        fn emit(nodes: &[KdNode], idx: u32, w: &mut ByteWriter) {
            match nodes[idx as usize] {
                KdNode::Leaf { .. } => {
                    w.u8(1);
                }
                KdNode::Split {
                    axis,
                    coord2,
                    left,
                    right,
                } => {
                    w.u8(0);
                    w.u8(axis);
                    w.u64(coord2 as u64);
                    emit(nodes, left, w);
                    emit(nodes, right, w);
                }
            }
        }
        emit(&self.nodes, 0, w);
    }

    /// Decodes a tree serialized by [`KdTree::serialize`].
    pub fn deserialize(r: &mut ByteReader<'_>) -> Result<KdTree, StorageError> {
        let count = r.u32()? as usize;
        if count == 0 {
            return Err(StorageError::Corrupt("empty KD-tree".into()));
        }
        let mut nodes = Vec::with_capacity(count);
        let mut next_region: u16 = 0;
        fn parse(
            r: &mut ByteReader<'_>,
            nodes: &mut Vec<KdNode>,
            next_region: &mut u16,
            budget: usize,
        ) -> Result<u32, StorageError> {
            if nodes.len() >= budget {
                return Err(StorageError::Corrupt("KD-tree node count overflow".into()));
            }
            let tag = r.u8()?;
            let my_idx = nodes.len() as u32;
            match tag {
                1 => {
                    nodes.push(KdNode::Leaf {
                        region: *next_region,
                    });
                    *next_region = next_region
                        .checked_add(1)
                        .ok_or_else(|| StorageError::Corrupt("more than 65535 regions".into()))?;
                    Ok(my_idx)
                }
                0 => {
                    let axis = r.u8()?;
                    if axis > 1 {
                        return Err(StorageError::Corrupt(format!("bad axis {axis}")));
                    }
                    let coord2 = r.u64()? as i64;
                    nodes.push(KdNode::Split {
                        axis,
                        coord2,
                        left: 0,
                        right: 0,
                    });
                    let left = parse(r, nodes, next_region, budget)?;
                    let right = parse(r, nodes, next_region, budget)?;
                    if let KdNode::Split {
                        left: l, right: rr, ..
                    } = &mut nodes[my_idx as usize]
                    {
                        *l = left;
                        *rr = right;
                    }
                    Ok(my_idx)
                }
                t => Err(StorageError::Corrupt(format!("bad KD node tag {t}"))),
            }
        }
        parse(r, &mut nodes, &mut next_region, count)?;
        if nodes.len() != count {
            return Err(StorageError::Corrupt(format!(
                "KD-tree node count mismatch: header {count}, parsed {}",
                nodes.len()
            )));
        }
        Ok(KdTree {
            nodes,
            num_regions: next_region,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tree splitting the plane into quadrants at (10, 20):
    /// regions: 0 = x<10,y<20; 1 = x<10,y>=20; 2 = x>=10,y<20; 3 = x>=10,y>=20.
    fn quad_tree() -> KdTree {
        KdTree::from_nodes(vec![
            KdNode::Split {
                axis: 0,
                coord2: 19,
                left: 1,
                right: 4,
            }, // x split at 9.5
            KdNode::Split {
                axis: 1,
                coord2: 39,
                left: 2,
                right: 3,
            }, // y split at 19.5
            KdNode::Leaf { region: 0 },
            KdNode::Leaf { region: 1 },
            KdNode::Split {
                axis: 1,
                coord2: 39,
                left: 5,
                right: 6,
            },
            KdNode::Leaf { region: 2 },
            KdNode::Leaf { region: 3 },
        ])
    }

    #[test]
    fn region_lookup() {
        let t = quad_tree();
        assert_eq!(t.num_regions(), 4);
        assert_eq!(t.region_of(Point::new(0, 0)), 0);
        assert_eq!(t.region_of(Point::new(0, 100)), 1);
        assert_eq!(t.region_of(Point::new(100, 0)), 2);
        assert_eq!(t.region_of(Point::new(100, 100)), 3);
        // boundary: x = 10 (doubled 20 > 19) goes right
        assert_eq!(t.region_of(Point::new(10, 0)), 2);
        assert_eq!(t.region_of(Point::new(9, 0)), 0);
    }

    #[test]
    fn serialization_round_trip() {
        let t = quad_tree();
        let mut w = ByteWriter::new();
        t.serialize(&mut w);
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        let t2 = KdTree::deserialize(&mut r).unwrap();
        assert_eq!(t, t2);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn single_region_maps_everything() {
        let t = KdTree::single_region();
        assert_eq!(t.region_of(Point::new(i32::MIN, i32::MAX)), 0);
        let mut w = ByteWriter::new();
        t.serialize(&mut w);
        let buf = w.into_vec();
        let t2 = KdTree::deserialize(&mut ByteReader::new(&buf)).unwrap();
        assert_eq!(t2.num_regions(), 1);
    }

    #[test]
    fn corrupt_tag_rejected() {
        let mut w = ByteWriter::new();
        w.u32(1).u8(7);
        let buf = w.into_vec();
        assert!(KdTree::deserialize(&mut ByteReader::new(&buf)).is_err());
    }

    #[test]
    fn truncated_stream_rejected() {
        let t = quad_tree();
        let mut w = ByteWriter::new();
        t.serialize(&mut w);
        let buf = w.into_vec();
        let cut = &buf[..buf.len() - 3];
        assert!(KdTree::deserialize(&mut ByteReader::new(cut)).is_err());
    }

    #[test]
    #[should_panic(expected = "numbered in DFS order")]
    fn bad_region_numbering_rejected() {
        KdTree::from_nodes(vec![
            KdNode::Split {
                axis: 0,
                coord2: 1,
                left: 1,
                right: 2,
            },
            KdNode::Leaf { region: 1 },
            KdNode::Leaf { region: 0 },
        ]);
    }

    #[test]
    #[should_panic(expected = "must be odd")]
    fn even_split_rejected() {
        KdTree::from_nodes(vec![
            KdNode::Split {
                axis: 0,
                coord2: 2,
                left: 1,
                right: 2,
            },
            KdNode::Leaf { region: 0 },
            KdNode::Leaf { region: 1 },
        ]);
    }
}
