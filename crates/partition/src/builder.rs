//! Plain and packed KD-tree partition builders.
//!
//! Both builders cut the node set until each leaf's serialized network data
//! fits in one disk page (or one *cluster* of pages for PI*). The plain
//! builder splits at the median node — the textbook KD-tree of §5.1, which
//! "would leave up to 50% unutilized space". The packed builder implements
//! §5.6: splits at byte position `2^i·(B−z)` along the sorted byte stream,
//! guaranteeing high utilization.
//!
//! Deviation from the paper (documented in DESIGN.md §2): the paper's
//! byte-split argument can overflow a page by up to `z` bytes in adversarial
//! inputs, so we split against an effective target of `B − 2z` and keep a
//! plain-split fallback for any leaf that still exceeds `B`; no page ever
//! overflows and measured utilization stays >95%.

use crate::kdtree::{KdNode, KdTree, RegionId};
use privpath_graph::network::RoadNetwork;
use privpath_graph::types::NodeId;

/// A finished partition: the tree plus node-to-region assignment.
#[derive(Debug, Clone)]
pub struct Partition {
    /// The region tree (serialized into the header file).
    pub tree: KdTree,
    /// Region of each network node.
    pub region_of_node: Vec<RegionId>,
    /// Nodes of each region, ascending.
    pub region_nodes: Vec<Vec<NodeId>>,
    /// Serialized bytes of each region's node records.
    pub region_bytes: Vec<usize>,
    /// Page-payload capacity the builder packed against.
    pub capacity: usize,
}

impl Partition {
    /// Number of regions.
    pub fn num_regions(&self) -> u16 {
        self.tree.num_regions()
    }

    /// Mean fraction of `capacity` actually used per region — the space
    /// utilization metric of Figure 8(a).
    pub fn utilization(&self) -> f64 {
        if self.region_bytes.is_empty() {
            return 0.0;
        }
        let used: usize = self.region_bytes.iter().sum();
        used as f64 / (self.capacity as f64 * self.region_bytes.len() as f64)
    }
}

#[derive(Clone, Copy)]
struct Item {
    node: NodeId,
    x: i32,
    y: i32,
    bytes: usize,
}

impl Item {
    fn coord(&self, axis: u8) -> i32 {
        if axis == 0 {
            self.x
        } else {
            self.y
        }
    }
}

struct BuildCtx {
    nodes: Vec<KdNode>,
    next_region: u16,
    assign: Vec<RegionId>,
    capacity: usize,
}

impl BuildCtx {
    fn make_leaf(&mut self, items: &[Item]) -> u32 {
        let region = self.next_region;
        self.next_region = self
            .next_region
            .checked_add(1)
            .expect("more than 65535 regions; increase the page size or cluster factor");
        for it in items {
            self.assign[it.node as usize] = region;
        }
        let idx = self.nodes.len() as u32;
        self.nodes.push(KdNode::Leaf { region });
        idx
    }

    /// Pushes a split placeholder, builds children via `f`, patches links.
    fn make_split(
        &mut self,
        axis: u8,
        coord2: i64,
        f: impl FnOnce(&mut Self) -> (u32, u32),
    ) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(KdNode::Split {
            axis,
            coord2,
            left: 0,
            right: 0,
        });
        let (l, r) = f(self);
        if let KdNode::Split { left, right, .. } = &mut self.nodes[idx as usize] {
            *left = l;
            *right = r;
        }
        idx
    }
}

fn total_bytes(items: &[Item]) -> usize {
    items.iter().map(|i| i.bytes).sum()
}

fn sort_axis(items: &mut [Item], axis: u8) {
    items.sort_unstable_by_key(|i| (i.coord(axis), i.node));
}

/// Finds a split index near `want` (in `1..items.len()`) that falls on a
/// coordinate boundary of `axis` (so the geometric line separates the two
/// sides). Returns `None` if all items share the coordinate.
fn boundary_near(items: &[Item], axis: u8, want: usize) -> Option<usize> {
    let n = items.len();
    debug_assert!(n >= 2);
    let want = want.clamp(1, n - 1);
    let ok = |k: usize| items[k - 1].coord(axis) != items[k].coord(axis);
    if ok(want) {
        return Some(want);
    }
    for d in 1..n {
        if want + d < n && ok(want + d) {
            return Some(want + d);
        }
        if want > d && ok(want - d) {
            return Some(want - d);
        }
    }
    None
}

/// Index `k` where the byte prefix sum crosses `target`, with the straddling
/// item pushed to whichever side lands closer to `target`; clamped to
/// `1..items.len()`.
fn byte_split_index(items: &[Item], target: usize) -> usize {
    let mut acc = 0usize;
    for (i, it) in items.iter().enumerate() {
        let next = acc + it.bytes;
        if next >= target {
            // push straddler left (k = i+1) or right (k = i)?
            let k = if next - target <= target.saturating_sub(acc) {
                i + 1
            } else {
                i
            };
            return k.clamp(1, items.len() - 1);
        }
        acc = next;
    }
    items.len() - 1
}

/// How the split position is chosen.
enum SplitGoal {
    /// Near a byte prefix-sum position (packed construction).
    Bytes(usize),
    /// At the median item (plain KD-tree).
    MedianItem,
}

/// Splits `items` at a coordinate boundary near the goal position on `axis`,
/// falling back to the other axis. Returns `(axis_used, k, coord2)`.
fn split_point(items: &mut [Item], axis: u8, goal: SplitGoal) -> (u8, usize, i64) {
    for candidate in [axis, axis ^ 1] {
        sort_axis(items, candidate);
        let want = match goal {
            SplitGoal::Bytes(target) => byte_split_index(items, target),
            SplitGoal::MedianItem => items.len() / 2,
        };
        if let Some(k) = boundary_near(items, candidate, want) {
            let coord2 = 2 * i64::from(items[k].coord(candidate)) - 1;
            return (candidate, k, coord2);
        }
    }
    panic!(
        "cannot split: all {} items share identical coordinates",
        items.len()
    );
}

/// Plain recursive median split (§5.1's baseline construction).
fn build_plain(ctx: &mut BuildCtx, items: &mut [Item], axis: u8) -> u32 {
    if total_bytes(items) <= ctx.capacity || items.len() < 2 {
        assert!(
            total_bytes(items) <= ctx.capacity,
            "single node record exceeds page capacity; use a larger page size"
        );
        return ctx.make_leaf(items);
    }
    let (axis_used, k, coord2) = split_point(items, axis, SplitGoal::MedianItem);
    let (l_items, r_items) = items.split_at_mut(k);
    ctx.make_split(axis_used, coord2, |ctx| {
        let l = build_plain(ctx, l_items, axis_used ^ 1);
        let r = build_plain(ctx, r_items, axis_used ^ 1);
        (l, r)
    })
}

/// Balanced byte-median splits producing `leaves` leaves (the left-subtree
/// step of §5.6). Falls back to further splitting if a leaf still exceeds
/// capacity.
fn build_balanced(ctx: &mut BuildCtx, items: &mut [Item], axis: u8, leaves: usize) -> u32 {
    if leaves <= 1 || items.len() < 2 {
        if total_bytes(items) > ctx.capacity {
            return build_plain(ctx, items, axis);
        }
        return ctx.make_leaf(items);
    }
    let half = total_bytes(items) / 2;
    let (axis_used, k, coord2) = split_point(items, axis, SplitGoal::Bytes(half.max(1)));
    let (l_items, r_items) = items.split_at_mut(k);
    ctx.make_split(axis_used, coord2, |ctx| {
        let l = build_balanced(ctx, l_items, axis_used ^ 1, leaves / 2);
        let r = build_balanced(ctx, r_items, axis_used ^ 1, leaves - leaves / 2);
        (l, r)
    })
}

/// The packed construction of §5.6: split the byte stream at `2^i · target`
/// for the smallest `i` placing the split right of the middle byte; the left
/// part becomes `2^i` tightly-packed leaves, the right part recurses.
fn build_packed_rec(ctx: &mut BuildCtx, items: &mut [Item], axis: u8, target: usize) -> u32 {
    let w = total_bytes(items);
    if w <= ctx.capacity || items.len() < 2 {
        assert!(
            w <= ctx.capacity,
            "single node record exceeds page capacity; use a larger page size"
        );
        return ctx.make_leaf(items);
    }
    let mut i = 0u32;
    let mut p = target;
    while p <= w / 2 {
        i += 1;
        p = target << i;
    }
    let leaves = 1usize << i;
    if p >= w {
        // The whole group already fits the 2^i leaf budget.
        return build_balanced(ctx, items, axis, leaves);
    }
    let (axis_used, k, coord2) = split_point(items, axis, SplitGoal::Bytes(p));
    let (l_items, r_items) = items.split_at_mut(k);
    ctx.make_split(axis_used, coord2, |ctx| {
        let l = build_balanced(ctx, l_items, axis_used ^ 1, leaves);
        let r = build_packed_rec(ctx, r_items, axis_used ^ 1, target);
        (l, r)
    })
}

fn finish(ctx: BuildCtx, net: &RoadNetwork, bytes_of: &dyn Fn(NodeId) -> usize) -> Partition {
    let tree = KdTree::from_nodes(ctx.nodes);
    let regions = tree.num_regions() as usize;
    let mut region_nodes = vec![Vec::new(); regions];
    let mut region_bytes = vec![0usize; regions];
    for u in 0..net.num_nodes() as u32 {
        let r = ctx.assign[u as usize] as usize;
        region_nodes[r].push(u);
        region_bytes[r] += bytes_of(u);
    }
    for (r, b) in region_bytes.iter().enumerate() {
        assert!(
            *b <= ctx.capacity,
            "region {r} overflows capacity ({b} > {}): builder bug",
            ctx.capacity
        );
    }
    Partition {
        tree,
        region_of_node: ctx.assign,
        region_nodes,
        region_bytes,
        capacity: ctx.capacity,
    }
}

fn items_of(net: &RoadNetwork, bytes_of: &dyn Fn(NodeId) -> usize) -> Vec<Item> {
    (0..net.num_nodes() as u32)
        .map(|u| {
            let p = net.node_point(u);
            Item {
                node: u,
                x: p.x,
                y: p.y,
                bytes: bytes_of(u),
            }
        })
        .collect()
}

/// Builds a plain (median-split) partition with page payload `capacity`.
pub fn partition_plain(
    net: &RoadNetwork,
    capacity: usize,
    bytes_of: &dyn Fn(NodeId) -> usize,
) -> Partition {
    assert!(net.num_nodes() > 0, "cannot partition an empty network");
    let mut items = items_of(net, bytes_of);
    let mut ctx = BuildCtx {
        nodes: Vec::new(),
        next_region: 0,
        assign: vec![0; net.num_nodes()],
        capacity,
    };
    build_plain(&mut ctx, &mut items, 0);
    finish(ctx, net, bytes_of)
}

/// Splits into exactly `leaves` regions at count-medians (no byte capacity
/// constraint) — the partitioning used by the AF baseline, where "the number
/// of pages per region is a parameter of the method" (§4) rather than one
/// page per region. `capacity` in the result is set to the largest region's
/// byte size (so utilization is 100% for the max region).
pub fn partition_into(
    net: &RoadNetwork,
    leaves: usize,
    bytes_of: &dyn Fn(NodeId) -> usize,
) -> Partition {
    assert!(net.num_nodes() > 0, "cannot partition an empty network");
    assert!(leaves >= 1, "need at least one region");
    fn split_into(ctx: &mut BuildCtx, items: &mut [Item], axis: u8, k: usize) -> u32 {
        if k <= 1 || items.len() < 2 {
            return ctx.make_leaf(items);
        }
        let kl = k / 2;
        let want = items.len() * kl / k;
        // reuse the coordinate-boundary machinery via a temporary sort
        sort_axis(items, axis);
        let (axis_used, split_k, coord2) = match boundary_near(items, axis, want.max(1)) {
            Some(b) => (axis, b, 2 * i64::from(items[b].coord(axis)) - 1),
            None => {
                let other = axis ^ 1;
                sort_axis(items, other);
                match boundary_near(items, other, want.max(1)) {
                    Some(b) => (other, b, 2 * i64::from(items[b].coord(other)) - 1),
                    None => return ctx.make_leaf(items),
                }
            }
        };
        let (l_items, r_items) = items.split_at_mut(split_k);
        ctx.make_split(axis_used, coord2, |ctx| {
            let l = split_into(ctx, l_items, axis_used ^ 1, kl.max(1));
            let r = split_into(ctx, r_items, axis_used ^ 1, (k - kl).max(1));
            (l, r)
        })
    }
    let mut items = items_of(net, bytes_of);
    let mut ctx = BuildCtx {
        nodes: Vec::new(),
        next_region: 0,
        assign: vec![0; net.num_nodes()],
        capacity: usize::MAX,
    };
    split_into(&mut ctx, &mut items, 0, leaves);
    let mut part = finish(ctx, net, bytes_of);
    part.capacity = part.region_bytes.iter().copied().max().unwrap_or(1).max(1);
    part
}

/// Builds a packed partition (§5.6) with page payload `capacity`.
pub fn partition_packed(
    net: &RoadNetwork,
    capacity: usize,
    bytes_of: &dyn Fn(NodeId) -> usize,
) -> Partition {
    assert!(net.num_nodes() > 0, "cannot partition an empty network");
    let mut items = items_of(net, bytes_of);
    let z = items.iter().map(|i| i.bytes).max().unwrap_or(0);
    assert!(
        z <= capacity,
        "largest node record ({z} bytes) exceeds page capacity {capacity}"
    );
    // The paper's target B − z; leaves that still overflow after straddler
    // pushes and coordinate-boundary adjustments fall back to a further
    // median split (DESIGN.md §2), so `capacity` is a hard bound either way.
    let target = capacity.saturating_sub(z).max(z.max(1));
    let mut ctx = BuildCtx {
        nodes: Vec::new(),
        next_region: 0,
        assign: vec![0; net.num_nodes()],
        capacity,
    };
    build_packed_rec(&mut ctx, &mut items, 0, target);
    finish(ctx, net, bytes_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use privpath_graph::gen::{grid_network, road_like, GridGenConfig, RoadGenConfig};

    fn record_bytes(net: &RoadNetwork) -> impl Fn(NodeId) -> usize + '_ {
        move |u| net.node_record_bytes(u)
    }

    #[test]
    fn plain_partition_respects_capacity() {
        let net = road_like(&RoadGenConfig {
            nodes: 2000,
            seed: 5,
            ..Default::default()
        });
        let cap = 1024;
        let p = partition_plain(&net, cap, &record_bytes(&net));
        assert!(p.num_regions() > 1);
        for &b in &p.region_bytes {
            assert!(b <= cap);
        }
        // every node assigned to the region its point maps to
        for u in 0..net.num_nodes() as u32 {
            assert_eq!(
                p.tree.region_of(net.node_point(u)),
                p.region_of_node[u as usize]
            );
        }
    }

    #[test]
    fn packed_partition_utilization_beats_plain() {
        // Average over several networks: a single size can flatter the plain
        // tree (utilization W / (2^d · cap) swings with W), but packed must
        // dominate on average and stay above 90% everywhere.
        let cap = 2048;
        let mut plain_sum = 0.0;
        let mut packed_sum = 0.0;
        for seed in [6, 7, 8, 9] {
            let net = road_like(&RoadGenConfig {
                nodes: 2500 + seed as usize * 371,
                seed,
                ..Default::default()
            });
            let plain = partition_plain(&net, cap, &record_bytes(&net));
            let packed = partition_packed(&net, cap, &record_bytes(&net));
            plain_sum += plain.utilization();
            packed_sum += packed.utilization();
            assert!(
                packed.utilization() > 0.90,
                "packed utilization {:.3}",
                packed.utilization()
            );
            assert!(packed.num_regions() <= plain.num_regions());
        }
        assert!(
            packed_sum > plain_sum,
            "packed {packed_sum:.3} <= plain {plain_sum:.3}"
        );
    }

    #[test]
    fn packed_regions_respect_capacity() {
        let net = road_like(&RoadGenConfig {
            nodes: 3000,
            seed: 7,
            ..Default::default()
        });
        let cap = 1500;
        let p = partition_packed(&net, cap, &record_bytes(&net));
        for &b in &p.region_bytes {
            assert!(b <= cap);
        }
        for u in 0..net.num_nodes() as u32 {
            assert_eq!(
                p.tree.region_of(net.node_point(u)),
                p.region_of_node[u as usize]
            );
        }
    }

    #[test]
    fn grid_points_with_ties_still_split() {
        // Grid without jitter has massive coordinate ties on both axes.
        let net = grid_network(&GridGenConfig {
            nx: 30,
            ny: 30,
            jitter: 0,
            ..Default::default()
        });
        let p = partition_packed(&net, 2048, &record_bytes(&net));
        for &b in &p.region_bytes {
            assert!(b <= 2048);
        }
        let q = partition_plain(&net, 2048, &record_bytes(&net));
        for &b in &q.region_bytes {
            assert!(b <= 2048);
        }
    }

    #[test]
    fn whole_network_in_one_region_when_it_fits() {
        let net = grid_network(&GridGenConfig {
            nx: 3,
            ny: 3,
            ..Default::default()
        });
        let p = partition_packed(&net, 1 << 20, &record_bytes(&net));
        assert_eq!(p.num_regions(), 1);
        assert!(p.region_of_node.iter().all(|&r| r == 0));
    }

    #[test]
    fn region_nodes_partition_the_node_set() {
        let net = road_like(&RoadGenConfig {
            nodes: 1000,
            seed: 8,
            ..Default::default()
        });
        let p = partition_packed(&net, 1024, &record_bytes(&net));
        let mut seen = vec![false; net.num_nodes()];
        for (r, nodes) in p.region_nodes.iter().enumerate() {
            for &u in nodes {
                assert!(!seen[u as usize]);
                seen[u as usize] = true;
                assert_eq!(p.region_of_node[u as usize] as usize, r);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "exceeds page capacity")]
    fn oversized_record_rejected() {
        let net = grid_network(&GridGenConfig {
            nx: 3,
            ny: 3,
            ..Default::default()
        });
        partition_packed(&net, 8, &|_| 100);
    }

    #[test]
    fn partition_into_hits_leaf_count() {
        let net = road_like(&RoadGenConfig {
            nodes: 1000,
            seed: 12,
            ..Default::default()
        });
        for k in [1usize, 2, 5, 8, 16] {
            let p = partition_into(&net, k, &record_bytes(&net));
            assert_eq!(p.num_regions() as usize, k, "leaf count for k={k}");
            for u in 0..net.num_nodes() as u32 {
                assert_eq!(
                    p.tree.region_of(net.node_point(u)),
                    p.region_of_node[u as usize]
                );
            }
        }
    }

    #[test]
    fn partition_into_balances_counts() {
        let net = road_like(&RoadGenConfig {
            nodes: 900,
            seed: 13,
            ..Default::default()
        });
        let p = partition_into(&net, 9, &record_bytes(&net));
        for nodes in &p.region_nodes {
            assert!(
                (60..=140).contains(&nodes.len()),
                "region of {} nodes",
                nodes.len()
            );
        }
    }

    #[test]
    fn utilization_of_uniform_records() {
        // 100 nodes × 100 bytes, capacity 1000: packed should approach ~10 per page.
        let net = road_like(&RoadGenConfig {
            nodes: 100,
            seed: 3,
            ..Default::default()
        });
        let p = partition_packed(&net, 1000, &|_| 100);
        assert!(p.utilization() >= 0.7, "utilization {:.3}", p.utilization());
    }
}
