//! Exact fractions in `[0, 1]` for positions along an edge segment.
//!
//! Border nodes sit at `t = (c − a)/(b − a)` along their edge, where all
//! quantities are (doubled) integer coordinates. Comparing crossing positions
//! from different split axes requires exact arithmetic — `i128`
//! cross-multiplication avoids any floating-point ordering bugs.

use std::cmp::Ordering;

/// A non-negative fraction `num/den` with `den > 0`, usually in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Frac {
    /// Numerator.
    pub num: i64,
    /// Denominator (always positive after construction).
    pub den: i64,
}

impl Frac {
    /// Zero.
    pub const ZERO: Frac = Frac { num: 0, den: 1 };
    /// One.
    pub const ONE: Frac = Frac { num: 1, den: 1 };

    /// Creates `num/den`, normalizing the sign so `den > 0` and reducing by
    /// the gcd so structurally-equal fractions are value-equal (`2/4 == 1/2`).
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i64, den: i64) -> Frac {
        assert_ne!(den, 0, "fraction denominator must be nonzero");
        let (mut num, mut den) = if den < 0 { (-num, -den) } else { (num, den) };
        let g = gcd(num.unsigned_abs(), den.unsigned_abs());
        if g > 1 {
            num /= g as i64;
            den /= g as i64;
        }
        Frac { num, den }
    }

    /// `1 − self` (used to mirror crossing positions onto the reverse arc).
    pub fn complement(self) -> Frac {
        Frac {
            num: self.den - self.num,
            den: self.den,
        }
    }

    /// Approximate value as `f64` (for weight apportioning only, never for
    /// ordering decisions).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// True if strictly between zero and one — i.e. an interior point of the
    /// segment, which is what makes a crossing a genuine border node.
    pub fn is_interior(self) -> bool {
        self > Frac::ZERO && self < Frac::ONE
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

impl PartialOrd for Frac {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Frac {
    fn cmp(&self, other: &Self) -> Ordering {
        let lhs = i128::from(self.num) * i128::from(other.den);
        let rhs = i128::from(other.num) * i128::from(self.den);
        lhs.cmp(&rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ordering_is_exact() {
        assert!(Frac::new(1, 3) < Frac::new(1, 2));
        assert!(Frac::new(2, 4) == Frac::new(1, 2));
        assert!(Frac::new(-1, -2) == Frac::new(1, 2));
        assert!(Frac::new(1, -2) < Frac::ZERO);
    }

    #[test]
    fn complement() {
        assert_eq!(Frac::new(1, 4).complement(), Frac::new(3, 4));
        assert_eq!(Frac::ZERO.complement(), Frac::ONE);
    }

    #[test]
    fn interior() {
        assert!(Frac::new(1, 2).is_interior());
        assert!(!Frac::ZERO.is_interior());
        assert!(!Frac::ONE.is_interior());
        assert!(!Frac::new(5, 4).is_interior());
        assert!(Frac::new(2, 4) == Frac::new(1, 2));
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn zero_denominator_panics() {
        Frac::new(1, 0);
    }

    proptest! {
        #[test]
        fn cmp_matches_f64_when_far_apart(a in 1i64..10_000, b in 1i64..10_000, c in 1i64..10_000, d in 1i64..10_000) {
            let x = Frac::new(a, b);
            let y = Frac::new(c, d);
            let fx = x.to_f64();
            let fy = y.to_f64();
            if (fx - fy).abs() > 1e-9 {
                prop_assert_eq!(x.cmp(&y), fx.partial_cmp(&fy).unwrap());
            }
        }

        #[test]
        fn complement_is_involution(num in 0i64..1000, den in 1i64..1000) {
            let f = Frac::new(num.min(den), den);
            prop_assert_eq!(f.complement().complement(), f);
        }
    }
}
