//! Network partitioning for privpath.
//!
//! The CI/PI/HY/PI* schemes all start by partitioning the road network into
//! regions via a KD-tree superimposed on the Euclidean embedding (§5.1). Two
//! constructions are provided:
//!
//! * [`builder::partition_plain`] — the textbook KD-tree that splits at the
//!   median node until each leaf's serialized data fits in a page; up to 50%
//!   of each page can end up unused;
//! * [`builder::partition_packed`] — the paper's packed construction (§5.6):
//!   an unbalanced tree whose byte-positioned splits guarantee high page
//!   utilization (>95% measured, Figure 8).
//!
//! [`borders`] computes **border nodes** — the intersection points of network
//! edges with the (bounded) splitting segments (§5.2) — by exact-fraction
//! clipping of each edge through the leaf cells.
//!
//! Split lines live at *odd doubled coordinates* (`2·c − 1`): node
//! coordinates are integers, so doubling guarantees no node ever lies exactly
//! on a split line and every region crossing is a strictly interior point of
//! some edge. This keeps the paper's fundamental border-node property
//! ("any path leaving a region passes through one of its border nodes")
//! unconditional.

pub mod borders;
pub mod builder;
pub mod frac;
pub mod kdtree;

pub use borders::{compute_borders, ArcCrossing, BorderNode, Borders};
pub use builder::{partition_into, partition_packed, partition_plain, Partition};
pub use frac::Frac;
pub use kdtree::{KdNode, KdTree, RegionId};
