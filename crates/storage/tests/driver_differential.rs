//! Driver differential: every `PagedFile` backend serves bit-identical
//! bytes for every read shape.
//!
//! The PR 10 scan kernel leans on two new trait surfaces — contiguous run
//! reads (`read_run_into`) and zero-copy exposure (`contiguous`) — and adds
//! a third driver (`MmapFile`). This suite pins the driver contract the
//! leakage argument assumes: `MemFile` ≡ `DiskFile` ≡ `MmapFile` ≡ their
//! `ChecksumFile`-wrapped forms, for single pages, page-into reads, and
//! runs of every alignment (run boundaries, the zero-length run, and the
//! partial run ending exactly at the last page), with identical typed
//! errors past the end.

use privpath_storage::{
    crc32, ChecksumFile, DiskFile, MemFile, MmapFile, PageBuf, PagedFile, StorageError,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("privpath-driver-diff-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Builds all six drivers over the same persisted content.
fn drivers(
    dir: &std::path::Path,
    bytes: &[u8],
    page_size: usize,
) -> Vec<(&'static str, Arc<dyn PagedFile>)> {
    let mem = MemFile::from_bytes(bytes, page_size);
    let path = dir.join("f.bin");
    mem.persist(&path).unwrap();
    let crcs: Vec<u32> = (0..mem.num_pages())
        .map(|p| crc32(mem.page(p).unwrap()))
        .collect();
    let disk = DiskFile::open(&path, page_size).unwrap();
    let mapped = MmapFile::open(&path, page_size).unwrap();
    vec![
        ("mem", Arc::new(mem.clone()) as Arc<dyn PagedFile>),
        ("disk", Arc::new(disk)),
        ("mmap", Arc::new(mapped)),
        (
            "crc(mem)",
            Arc::new(ChecksumFile::new("F", Arc::new(mem.clone()), crcs.clone())),
        ),
        (
            "crc(disk)",
            Arc::new(ChecksumFile::new(
                "F",
                Arc::new(DiskFile::open(&path, page_size).unwrap()),
                crcs.clone(),
            )),
        ),
        (
            "crc(mmap)",
            Arc::new(ChecksumFile::new(
                "F",
                Arc::new(MmapFile::open(&path, page_size).unwrap()),
                crcs,
            )),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn all_drivers_serve_identical_bytes(
        pages in 1u32..12,
        page_size_sel in 0usize..3,
        seed in any::<u64>(),
        first in 0u32..14,
        count in 0u32..14,
    ) {
        let page_size = [32usize, 64, 96][page_size_sel];
        let len = pages as usize * page_size;
        let bytes: Vec<u8> = (0..len)
            .map(|i| (seed.wrapping_mul(0x9E37_79B9).wrapping_add(i as u64) >> 7) as u8)
            .collect();
        let dir = temp_dir("prop");
        let reference = MemFile::from_bytes(&bytes, page_size);

        for (name, f) in drivers(&dir, &bytes, page_size) {
            prop_assert_eq!(f.num_pages(), pages, "{}", name);
            prop_assert_eq!(f.page_size(), page_size, "{}", name);

            // single-page reads, both shapes
            let mut buf = PageBuf::zeroed(page_size);
            for p in 0..pages {
                let got = f.read_page(p).unwrap();
                prop_assert_eq!(got.as_slice(), reference.page(p).unwrap(), "{} page {}", name, p);
                f.read_page_into(p, &mut buf).unwrap();
                prop_assert_eq!(buf.as_slice(), reference.page(p).unwrap(), "{} into {}", name, p);
            }
            prop_assert!(matches!(
                f.read_page(pages),
                Err(StorageError::PageOutOfRange { .. })
            ), "{}", name);

            // the sampled run window: in-range must match the reference
            // bytes exactly, out-of-range must be the typed error
            let mut run = vec![0xAAu8; count as usize * page_size];
            let in_range = u64::from(first) + u64::from(count) <= u64::from(pages);
            let res = f.read_run_into(first, &mut run);
            if count == 0 {
                prop_assert!(res.is_ok(), "{}: empty run always succeeds", name);
            } else if in_range {
                res.unwrap();
                for i in 0..count {
                    prop_assert_eq!(
                        &run[i as usize * page_size..(i as usize + 1) * page_size],
                        reference.page(first + i).unwrap(),
                        "{} run ({}, {}) page {}", name, first, count, i
                    );
                }
            } else {
                prop_assert!(
                    matches!(res, Err(StorageError::PageOutOfRange { .. })),
                    "{} run ({}, {}) past the end must be typed", name, first, count
                );
            }

            // the partial run ending exactly at the last page
            if pages > 1 {
                let tail_first = pages - 1;
                let mut tail = vec![0u8; page_size];
                f.read_run_into(tail_first, &mut tail).unwrap();
                prop_assert_eq!(&tail[..], reference.page(tail_first).unwrap(), "{} tail", name);
            }

            // zero-copy exposure, where offered, is the exact content
            if let Some(all) = f.contiguous() {
                prop_assert_eq!(all.len(), len, "{}", name);
                prop_assert_eq!(all, &bytes[..], "{} contiguous", name);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The checksum wrapper never exposes raw bytes, whatever the inner driver.
#[test]
fn checksum_wrapper_never_exposes_contiguous() {
    let dir = temp_dir("noexpose");
    let bytes: Vec<u8> = (0..4 * 64).map(|i| (i % 251) as u8).collect();
    for (name, f) in drivers(&dir, &bytes, 64) {
        if name.starts_with("crc") {
            assert!(f.contiguous().is_none(), "{name} must not bypass CRCs");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The mmap driver either really maps (Linux) or transparently falls back —
/// and tells the truth about which happened.
#[test]
fn mmap_reports_its_backing() {
    let dir = temp_dir("backing");
    let path = dir.join("f.bin");
    MemFile::from_bytes(&[3u8; 2 * 64], 64)
        .persist(&path)
        .unwrap();
    let f = MmapFile::open(&path, 64).unwrap();
    assert_eq!(f.is_mapped(), sysmap_supported());
    std::fs::remove_dir_all(&dir).ok();
}

fn sysmap_supported() -> bool {
    cfg!(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))
}
