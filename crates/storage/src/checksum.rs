//! CRC-32 (IEEE 802.3 polynomial) over page payloads.
//!
//! The paper's adversary is honest-but-curious and never tampers with data
//! (§3.1). Our fault-injection extension (DESIGN.md §7) lets a PIR backend
//! corrupt pages; checksums let the client detect that the trust assumption
//! was violated rather than silently returning a wrong path.

/// Pre-computed CRC-32 table for the reflected IEEE polynomial 0xEDB88320.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    })
}

/// Computes the CRC-32 of `data` (same value as zlib's `crc32`).
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c: u32 = 0xFFFF_FFFF;
    for &b in data {
        c = t[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 4096];
        data[100] = 7;
        let c0 = crc32(&data);
        data[100] ^= 1;
        assert_ne!(crc32(&data), c0);
    }

    #[test]
    fn detects_transposition() {
        let a = crc32(b"ab");
        let b = crc32(b"ba");
        assert_ne!(a, b);
    }
}
