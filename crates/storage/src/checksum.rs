//! CRC-32 (IEEE 802.3 polynomial) over page payloads.
//!
//! The paper's adversary is honest-but-curious and never tampers with data
//! (§3.1). Our fault-injection extension (DESIGN.md §7) lets a PIR backend
//! corrupt pages; checksums let the client detect that the trust assumption
//! was violated rather than silently returning a wrong path.
//!
//! Disk- and mmap-backed serving verifies every page of every linear scan, so
//! the checksum sits on the round's critical path. The implementation is
//! slicing-by-8 (eight 256-entry tables, one table lookup per input byte but
//! eight bytes consumed per iteration), which runs ~4x faster than the
//! classic one-table byte loop while producing bit-identical values.

/// Pre-computed slicing-by-8 tables for the reflected IEEE polynomial
/// 0xEDB88320. `tables()[0]` is the classic single CRC table; `tables()[k]`
/// advances a byte through `k` additional zero bytes.
fn tables() -> &'static [[u32; 256]; 8] {
    use std::sync::OnceLock;
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for (i, entry) in t[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        for i in 0..256 {
            let mut c = t[0][i];
            for k in 1..8 {
                c = t[0][(c & 0xFF) as usize] ^ (c >> 8);
                t[k][i] = c;
            }
        }
        t
    })
}

/// Computes the CRC-32 of `data` (same value as zlib's `crc32`).
pub fn crc32(data: &[u8]) -> u32 {
    let t = tables();
    let mut c: u32 = 0xFFFF_FFFF;
    let mut chunks = data.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes(ch[0..4].try_into().unwrap()) ^ c;
        let hi = u32::from_le_bytes(ch[4..8].try_into().unwrap());
        c = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The one-table byte-at-a-time reference the sliced implementation must
    /// match bit for bit (committed snapshot manifests carry CRCs produced by
    /// the old loop).
    fn crc32_reference(data: &[u8]) -> u32 {
        let t = &tables()[0];
        let mut c: u32 = 0xFFFF_FFFF;
        for &b in data {
            c = t[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
        }
        c ^ 0xFFFF_FFFF
    }

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn matches_byte_at_a_time_reference() {
        // Every length 0..64 plus a 4 KiB page: exercises the 8-byte main
        // loop, the remainder tail, and their interaction.
        let data: Vec<u8> = (0..4096 + 64)
            .map(|i| ((i * 131 + 7) % 253) as u8)
            .collect();
        for len in 0..64 {
            assert_eq!(
                crc32(&data[..len]),
                crc32_reference(&data[..len]),
                "len {len}"
            );
        }
        assert_eq!(crc32(&data[..4096]), crc32_reference(&data[..4096]));
        assert_eq!(crc32(&data), crc32_reference(&data));
        // Unaligned start: the slice need not begin at an 8-byte boundary.
        assert_eq!(crc32(&data[3..1000]), crc32_reference(&data[3..1000]));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 4096];
        data[100] = 7;
        let c0 = crc32(&data);
        data[100] ^= 1;
        assert_ne!(crc32(&data), c0);
    }

    #[test]
    fn detects_transposition() {
        let a = crc32(b"ab");
        let b = crc32(b"ba");
        assert_ne!(a, b);
    }
}
