//! Fixed-size page buffers.
//!
//! Table 2 of the paper fixes the disk page size at 4 KByte; every database
//! file (`Fh`, `Fl`, `Fi`, `Fd`) is organized in equal-sized pages and the PIR
//! interface transfers exactly one page per request.

/// Default page size used throughout the evaluation (Table 2).
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// A single fixed-size page.
///
/// Pages are always exactly `page_size` bytes; partially-filled pages are
/// zero-padded (the trailing unused space is the "striped space" of Figure 4).
#[derive(Clone, PartialEq, Eq)]
pub struct PageBuf {
    bytes: Box<[u8]>,
}

impl PageBuf {
    /// Creates a zero-filled page of `page_size` bytes.
    pub fn zeroed(page_size: usize) -> Self {
        PageBuf {
            bytes: vec![0u8; page_size].into_boxed_slice(),
        }
    }

    /// Creates a page from `data`, zero-padding it to `page_size`.
    ///
    /// # Panics
    /// Panics if `data.len() > page_size`; callers are expected to have
    /// enforced the page capacity via [`crate::error::StorageError::RecordTooLarge`]
    /// before reaching this point.
    pub fn from_bytes(data: &[u8], page_size: usize) -> Self {
        assert!(
            data.len() <= page_size,
            "page payload of {} bytes exceeds page size {}",
            data.len(),
            page_size
        );
        let mut bytes = vec![0u8; page_size];
        bytes[..data.len()].copy_from_slice(data);
        PageBuf {
            bytes: bytes.into_boxed_slice(),
        }
    }

    /// Page contents (always `page_size` bytes).
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutable page contents.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// Size of the page in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the page size is zero (never the case for real files).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Consumes the page and returns the underlying bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.bytes.into_vec()
    }
}

impl std::fmt::Debug for PageBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let used = self
            .bytes
            .iter()
            .rposition(|&b| b != 0)
            .map_or(0, |p| p + 1);
        write!(f, "PageBuf({} bytes, ~{} used)", self.bytes.len(), used)
    }
}

/// Number of pages needed to store `bytes` bytes in pages of `page_size`.
pub fn pages_for(bytes: usize, page_size: usize) -> u32 {
    assert!(page_size > 0, "page size must be positive");
    (bytes.div_ceil(page_size)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_page_has_right_size() {
        let p = PageBuf::zeroed(DEFAULT_PAGE_SIZE);
        assert_eq!(p.len(), 4096);
        assert!(p.as_slice().iter().all(|&b| b == 0));
    }

    #[test]
    fn from_bytes_pads() {
        let p = PageBuf::from_bytes(&[1, 2, 3], 8);
        assert_eq!(p.as_slice(), &[1, 2, 3, 0, 0, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "exceeds page size")]
    fn from_bytes_rejects_oversized() {
        let _ = PageBuf::from_bytes(&[0; 9], 8);
    }

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(pages_for(0, 4096), 0);
        assert_eq!(pages_for(1, 4096), 1);
        assert_eq!(pages_for(4096, 4096), 1);
        assert_eq!(pages_for(4097, 4096), 2);
        assert_eq!(pages_for(3 * 4096, 4096), 3);
    }

    #[test]
    fn debug_reports_used_bytes() {
        let p = PageBuf::from_bytes(&[1, 0, 7], 16);
        let s = format!("{p:?}");
        assert!(s.contains("16 bytes"));
        assert!(s.contains("~3 used"));
    }

    #[test]
    fn mutation_round_trips() {
        let mut p = PageBuf::zeroed(4);
        p.as_mut_slice()[2] = 42;
        assert_eq!(p.into_vec(), vec![0, 0, 42, 0]);
    }
}
