//! Versioned on-disk snapshot container for a whole built database.
//!
//! A snapshot embeds every paged file of a built database in one container,
//! with enough manifest to reopen it cold: a magic/version preamble, a
//! CRC-guarded header carrying an opaque caller meta blob plus a per-file
//! manifest (name, opaque mode blob, page geometry, byte offset, per-page
//! CRC-32 table), then the raw page data. Layout:
//!
//! ```text
//! [magic u32 "PPSN"][version u16][header_len u32][header_crc u32]
//! [header: meta | file_count | file entries...]
//! [page data, one contiguous run per file]
//! ```
//!
//! File data offsets in the manifest are relative to the end of the header
//! (`data_start`), so the header can be built in one pass without patching.
//!
//! Snapshots are written through [`crate::pagefile::atomic_write`]: a crash
//! mid-write leaves either the previous snapshot or none — a partially
//! written snapshot is never observable at the final path. The reader
//! validates everything it touches and returns typed [`StorageError`]s;
//! arbitrary bytes, truncations, and bit flips must never panic it.

use crate::checksum::crc32;
use crate::codec::{ByteReader, ByteWriter};
use crate::error::StorageError;
use crate::mmapfile::MmapFile;
use crate::pagefile::{atomic_write, ChecksumFile, DiskFile, MemFile, PagedFile};
use crate::Result;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic prefix, `b"PPSN"` on disk (little-endian u32).
pub const SNAPSHOT_MAGIC: u32 = 0x4E53_5050;
/// Current container format version.
pub const SNAPSHOT_VERSION: u16 = 1;
/// Fixed preamble size: magic + version + header_len + header_crc.
const PREAMBLE_BYTES: u64 = 4 + 2 + 4 + 4;

/// One file recorded in a snapshot manifest.
pub struct SnapshotEntry {
    /// File name as registered with the server (e.g. `"Fh"`, `"Fi|Fd"`).
    pub name: String,
    /// Opaque per-file blob (the serving layer stores the PIR mode here).
    pub mode_blob: Vec<u8>,
    /// Page size in bytes.
    pub page_size: usize,
    /// Number of pages.
    pub num_pages: u32,
    /// Byte offset of the file's pages, relative to `data_start`.
    rel_offset: u64,
    /// Per-page CRC-32 table, one entry per page.
    crcs: Vec<u32>,
}

impl SnapshotEntry {
    /// The per-page checksum table (one CRC-32 per page).
    pub fn crcs(&self) -> &[u32] {
        &self.crcs
    }
}

/// Builds and writes a snapshot container.
pub struct SnapshotWriter {
    meta: Vec<u8>,
    files: Vec<(String, Vec<u8>, Arc<dyn PagedFile>)>,
}

impl SnapshotWriter {
    /// Starts a snapshot carrying an opaque caller `meta` blob (the serving
    /// layer records scheme kind, seed, spec, and build stats there).
    pub fn new(meta: Vec<u8>) -> Self {
        SnapshotWriter {
            meta,
            files: Vec::new(),
        }
    }

    /// Appends a file. Files are laid out in the order added; the reader
    /// reports them in the same order, which the serving layer relies on to
    /// reproduce deterministic file ids.
    pub fn add_file(
        &mut self,
        name: impl Into<String>,
        mode_blob: Vec<u8>,
        file: Arc<dyn PagedFile>,
    ) {
        self.files.push((name.into(), mode_blob, file));
    }

    /// Writes the snapshot to `path` atomically (temp + fsync + rename).
    /// Reads every page of every file twice: once for the manifest CRCs,
    /// once to stream the data.
    pub fn write(&self, path: &Path) -> Result<()> {
        let mut header = ByteWriter::new();
        header.len_bytes(&self.meta);
        header.u16(self.files.len() as u16);
        let mut rel = 0u64;
        for (name, mode_blob, file) in &self.files {
            header.len_bytes(name.as_bytes());
            header.len_bytes(mode_blob);
            header.u32(file.page_size() as u32);
            header.u32(file.num_pages());
            header.u64(rel);
            for p in 0..file.num_pages() {
                header.u32(crc32(file.read_page(p)?.as_slice()));
            }
            rel += file.size_bytes();
        }
        let header = header.into_vec();
        let header_crc = crc32(&header);

        atomic_write(path, |f| {
            let mut preamble = ByteWriter::with_capacity(PREAMBLE_BYTES as usize);
            preamble
                .u32(SNAPSHOT_MAGIC)
                .u16(SNAPSHOT_VERSION)
                .u32(header.len() as u32)
                .u32(header_crc);
            f.write_all(preamble.as_slice())?;
            f.write_all(&header)?;
            for (_, _, file) in &self.files {
                for p in 0..file.num_pages() {
                    f.write_all(file.read_page(p)?.as_slice())?;
                }
            }
            Ok(())
        })
    }
}

/// Opens and validates a snapshot container; hands out page drivers for the
/// embedded files.
pub struct SnapshotReader {
    path: PathBuf,
    meta: Vec<u8>,
    entries: Vec<SnapshotEntry>,
    data_start: u64,
}

impl SnapshotReader {
    /// Opens `path`, validating magic, version, header CRC, and every
    /// manifest entry's bounds against the actual container length. Any
    /// malformed input — truncation, bit flip, garbage — yields a typed
    /// [`StorageError`], never a panic.
    pub fn open(path: &Path) -> Result<Self> {
        let bytes = std::fs::read(path)?;
        if bytes.len() < PREAMBLE_BYTES as usize {
            return Err(StorageError::UnexpectedEof {
                wanted: PREAMBLE_BYTES as usize,
                remaining: bytes.len(),
            });
        }
        let mut r = ByteReader::new(&bytes);
        let magic = r.u32()?;
        if magic != SNAPSHOT_MAGIC {
            return Err(StorageError::Corrupt(format!(
                "bad snapshot magic {magic:#010x}"
            )));
        }
        let version = r.u16()?;
        if version != SNAPSHOT_VERSION {
            return Err(StorageError::Corrupt(format!(
                "unsupported snapshot version {version}"
            )));
        }
        let header_len = r.u32()? as usize;
        let header_crc = r.u32()?;
        let header = r.bytes(header_len)?;
        let actual = crc32(header);
        if actual != header_crc {
            return Err(StorageError::ChecksumMismatch {
                expected: header_crc,
                actual,
            });
        }
        let data_start = PREAMBLE_BYTES + header_len as u64;
        let data_len = bytes.len() as u64 - data_start;

        let mut h = ByteReader::new(header);
        let meta = h.len_bytes()?.to_vec();
        let file_count = h.u16()?;
        let mut entries = Vec::with_capacity(file_count as usize);
        for i in 0..file_count {
            let name = std::str::from_utf8(h.len_bytes()?)
                .map_err(|_| StorageError::Corrupt(format!("file {i}: name is not UTF-8")))?
                .to_string();
            let mode_blob = h.len_bytes()?.to_vec();
            let page_size = h.u32()? as usize;
            let num_pages = h.u32()?;
            let rel_offset = h.u64()?;
            if page_size == 0 && num_pages > 0 {
                return Err(StorageError::Corrupt(format!(
                    "file {name}: zero page size with {num_pages} pages"
                )));
            }
            let span = num_pages as u64 * page_size as u64;
            let end = rel_offset.checked_add(span).ok_or_else(|| {
                StorageError::Corrupt(format!("file {name}: data window overflows"))
            })?;
            if end > data_len {
                return Err(StorageError::UnexpectedEof {
                    wanted: end as usize,
                    remaining: data_len as usize,
                });
            }
            let mut crcs = Vec::with_capacity(num_pages as usize);
            for _ in 0..num_pages {
                crcs.push(h.u32()?);
            }
            entries.push(SnapshotEntry {
                name,
                mode_blob,
                page_size,
                num_pages,
                rel_offset,
                crcs,
            });
        }
        if h.remaining() != 0 {
            return Err(StorageError::Corrupt(format!(
                "{} trailing bytes after snapshot manifest",
                h.remaining()
            )));
        }
        Ok(SnapshotReader {
            path: path.to_path_buf(),
            meta,
            entries,
            data_start,
        })
    }

    /// The opaque caller meta blob.
    pub fn meta(&self) -> &[u8] {
        &self.meta
    }

    /// Manifest entries, in the order the files were added at write time.
    pub fn entries(&self) -> &[SnapshotEntry] {
        &self.entries
    }

    /// Opens file `i` as a disk-backed driver with per-read checksum
    /// verification — a damaged page surfaces as
    /// [`StorageError::PageCorrupt`] at read time, never a wrong answer.
    pub fn open_disk(&self, i: usize) -> Result<ChecksumFile> {
        let e = self.entry(i)?;
        let disk = DiskFile::open_at(
            &self.path,
            e.page_size,
            self.data_start + e.rel_offset,
            e.num_pages,
        )?;
        Ok(ChecksumFile::new(
            e.name.clone(),
            Arc::new(disk),
            e.crcs.clone(),
        ))
    }

    /// Opens file `i` as a memory-mapped driver with per-read checksum
    /// verification — the same integrity envelope as
    /// [`SnapshotReader::open_disk`], but the underlying run reads come
    /// straight out of the mapping (or its buffered fallback) instead of
    /// positioned syscalls.
    pub fn open_mmap(&self, i: usize) -> Result<ChecksumFile> {
        let e = self.entry(i)?;
        let mapped = MmapFile::open_at(
            &self.path,
            e.page_size,
            self.data_start + e.rel_offset,
            e.num_pages,
        )?;
        Ok(ChecksumFile::new(
            e.name.clone(),
            Arc::new(mapped),
            e.crcs.clone(),
        ))
    }

    /// Loads file `i` fully into memory, verifying every page checksum.
    pub fn load_mem(&self, i: usize) -> Result<MemFile> {
        let e = self.entry(i)?;
        let disk = self.open_disk(i)?;
        let mut pages = Vec::with_capacity(e.num_pages as usize);
        for p in 0..e.num_pages {
            pages.push(disk.read_page(p)?);
        }
        Ok(MemFile::from_pages(pages, e.page_size))
    }

    fn entry(&self, i: usize) -> Result<&SnapshotEntry> {
        self.entries.get(i).ok_or(StorageError::PageOutOfRange {
            page: i as u32,
            pages: self.entries.len() as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("privpath-snap-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_files() -> Vec<(String, Vec<u8>, MemFile)> {
        let a: Vec<u8> = (0..3 * 64).map(|i| (i % 251) as u8).collect();
        let b: Vec<u8> = (0..5 * 64).map(|i| (i * 3 % 241) as u8).collect();
        vec![
            ("Fh".into(), vec![0], MemFile::from_bytes(&a, 64)),
            ("Fd".into(), vec![1, 9], MemFile::from_bytes(&b, 64)),
            ("empty".into(), vec![], MemFile::empty(64)),
        ]
    }

    fn write_sample(path: &Path) {
        let mut w = SnapshotWriter::new(b"meta-blob".to_vec());
        for (name, blob, file) in sample_files() {
            w.add_file(name, blob, Arc::new(file));
        }
        w.write(path).unwrap();
    }

    #[test]
    fn round_trip_disk_and_mem() {
        let dir = temp_dir("rt");
        let path = dir.join("db.snap");
        write_sample(&path);

        let r = SnapshotReader::open(&path).unwrap();
        assert_eq!(r.meta(), b"meta-blob");
        let originals = sample_files();
        assert_eq!(r.entries().len(), originals.len());
        for (i, (name, blob, mem)) in originals.iter().enumerate() {
            let e = &r.entries()[i];
            assert_eq!(&e.name, name);
            assert_eq!(&e.mode_blob, blob);
            assert_eq!(e.num_pages, mem.num_pages());
            assert_eq!(e.page_size, 64);
            let disk = r.open_disk(i).unwrap();
            let loaded = r.load_mem(i).unwrap();
            assert_eq!(loaded.num_pages(), mem.num_pages());
            for p in 0..mem.num_pages() {
                assert_eq!(disk.read_page(p).unwrap(), mem.read_page(p).unwrap());
                assert_eq!(loaded.read_page(p).unwrap(), mem.read_page(p).unwrap());
            }
        }
        assert!(r.open_disk(3).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn page_bit_flip_is_page_corrupt_with_identity() {
        let dir = temp_dir("flip");
        let path = dir.join("db.snap");
        write_sample(&path);

        // Flip one bit in the SECOND file's page 2 (data region).
        let mut bytes = std::fs::read(&path).unwrap();
        let data_start = bytes.len() - 8 * 64; // 3 + 5 + 0 pages of 64B
        bytes[data_start + 3 * 64 + 2 * 64 + 10] ^= 0x04;
        std::fs::write(&path, &bytes).unwrap();

        let r = SnapshotReader::open(&path).unwrap(); // header intact
        let disk = r.open_disk(1).unwrap();
        assert!(disk.read_page(0).is_ok());
        match disk.read_page(2) {
            Err(StorageError::PageCorrupt { file, page, .. }) => {
                assert_eq!(file, "Fd");
                assert_eq!(page, 2);
            }
            other => panic!("expected PageCorrupt, got {other:?}"),
        }
        assert!(matches!(
            r.load_mem(1),
            Err(StorageError::PageCorrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn structural_damage_is_typed() {
        let dir = temp_dir("struct");
        let path = dir.join("db.snap");
        write_sample(&path);
        let good = std::fs::read(&path).unwrap();

        // Bad magic.
        let mut b = good.clone();
        b[0] ^= 0xFF;
        std::fs::write(&path, &b).unwrap();
        assert!(matches!(
            SnapshotReader::open(&path),
            Err(StorageError::Corrupt(_))
        ));

        // Unsupported version.
        let mut b = good.clone();
        b[4] = 99;
        std::fs::write(&path, &b).unwrap();
        assert!(matches!(
            SnapshotReader::open(&path),
            Err(StorageError::Corrupt(_))
        ));

        // Header bit flip -> header checksum mismatch.
        let mut b = good.clone();
        b[PREAMBLE_BYTES as usize + 3] ^= 0x01;
        std::fs::write(&path, &b).unwrap();
        assert!(matches!(
            SnapshotReader::open(&path),
            Err(StorageError::ChecksumMismatch { .. })
        ));

        // Truncations at every prefix of the preamble+header.
        for cut in [0usize, 3, 7, 13, PREAMBLE_BYTES as usize + 5] {
            std::fs::write(&path, &good[..cut]).unwrap();
            assert!(
                SnapshotReader::open(&path).is_err(),
                "truncation to {cut} bytes must fail typed"
            );
        }

        // Truncated data region: open succeeds only if every window still
        // fits; cutting the last page must fail at open.
        std::fs::write(&path, &good[..good.len() - 1]).unwrap();
        assert!(matches!(
            SnapshotReader::open(&path),
            Err(StorageError::UnexpectedEof { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    proptest! {
        // Satellite: arbitrary bytes, truncations, and single-bit flips fed
        // to the snapshot open path always produce a typed StorageError —
        // never a panic, never a silently short file.
        #[test]
        fn fuzz_arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
            let dir = temp_dir("fuzz-arb");
            let path = dir.join("junk.snap");
            std::fs::write(&path, &bytes).unwrap();
            let _ = SnapshotReader::open(&path); // Ok or typed Err, no panic
            let _ = DiskFile::open(&path, 64);
            std::fs::remove_dir_all(&dir).ok();
        }

        #[test]
        fn fuzz_mutated_valid_snapshot_never_panics(
            flip_bit in 0usize..4096,
            trunc_permille in 0u32..1000,
        ) {
            let dir = temp_dir("fuzz-mut");
            let path = dir.join("db.snap");
            write_sample(&path);
            let good = std::fs::read(&path).unwrap();

            // Single-bit flip anywhere in the container.
            let mut flipped = good.clone();
            let bit = flip_bit % (good.len() * 8);
            flipped[bit / 8] ^= 1 << (bit % 8);
            std::fs::write(&path, &flipped).unwrap();
            if let Ok(r) = SnapshotReader::open(&path) {
                // Header survived (flip landed in data): every page read is
                // Ok or typed PageCorrupt, never a panic or a wrong answer
                // passed off as clean.
                for i in 0..r.entries().len() {
                    if let Ok(d) = r.open_disk(i) {
                        for p in 0..d.num_pages() {
                            let _ = d.read_page(p);
                        }
                    }
                    let _ = r.load_mem(i);
                }
            }

            // Truncation at an arbitrary point.
            let cut = good.len() * trunc_permille as usize / 1000;
            std::fs::write(&path, &good[..cut.min(good.len())]).unwrap();
            if let Ok(r) = SnapshotReader::open(&path) {
                for i in 0..r.entries().len() {
                    let _ = r.load_mem(i);
                }
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
