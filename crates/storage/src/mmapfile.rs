//! Memory-mapped paged files.
//!
//! [`MmapFile`] serves the same read-only page windows as
//! [`crate::pagefile::DiskFile`], but through a [`sysmap::Mapping`] so a
//! linear scan runs at memory bandwidth with zero syscalls and zero copies
//! (the mapping doubles as a [`PagedFile::contiguous`] source for the scan
//! kernel). On targets without raw-syscall mappings the driver transparently
//! falls back to reading the window into an owned buffer at open time — the
//! observable behavior (pages served, errors, determinism) is identical
//! either way, which the driver differential suite pins.

use crate::error::StorageError;
use crate::page::PageBuf;
use crate::pagefile::{check_run, PagedFile};
use crate::Result;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

enum Backing {
    Map(sysmap::Mapping),
    Buf(Vec<u8>),
}

/// Read-only memory-mapped (or buffered-fallback) paged file window.
pub struct MmapFile {
    backing: Backing,
    num_pages: u32,
    page_size: usize,
}

impl MmapFile {
    /// Opens a flat page stream written by [`crate::pagefile::MemFile::persist`].
    pub fn open(path: &Path, page_size: usize) -> Result<Self> {
        if page_size == 0 {
            return Err(StorageError::Corrupt("page size must be non-zero".into()));
        }
        let len = std::fs::metadata(path)?.len();
        if len % page_size as u64 != 0 {
            return Err(StorageError::Corrupt(format!(
                "file length {len} is not a multiple of page size {page_size}"
            )));
        }
        Self::open_at(path, page_size, 0, (len / page_size as u64) as u32)
    }

    /// Opens a window of `num_pages` pages starting `byte_offset` bytes into
    /// `path` — the mapped twin of [`crate::pagefile::DiskFile::open_at`],
    /// with the same typed error when the window runs past the container.
    pub fn open_at(
        path: &Path,
        page_size: usize,
        byte_offset: u64,
        num_pages: u32,
    ) -> Result<Self> {
        if page_size == 0 {
            return Err(StorageError::Corrupt("page size must be non-zero".into()));
        }
        let mut file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        let span = num_pages as u64 * page_size as u64;
        let end = byte_offset.checked_add(span).ok_or_else(|| {
            StorageError::Corrupt(format!(
                "file window overflows: offset {byte_offset} + {span} bytes"
            ))
        })?;
        if end > len {
            return Err(StorageError::UnexpectedEof {
                wanted: end as usize,
                remaining: len as usize,
            });
        }
        let backing = match sysmap::Mapping::map(&file, byte_offset, span as usize) {
            Some(map) => Backing::Map(map),
            None => {
                // Buffered fallback: one read of the whole window up front.
                let mut buf = vec![0u8; span as usize];
                file.seek(SeekFrom::Start(byte_offset))?;
                file.read_exact(&mut buf)?;
                Backing::Buf(buf)
            }
        };
        Ok(MmapFile {
            backing,
            num_pages,
            page_size,
        })
    }

    /// True when the window is served by a real kernel mapping (false on the
    /// buffered fallback path).
    pub fn is_mapped(&self) -> bool {
        matches!(self.backing, Backing::Map(_))
    }

    fn bytes(&self) -> &[u8] {
        match &self.backing {
            Backing::Map(m) => m.as_slice(),
            Backing::Buf(b) => b,
        }
    }
}

impl PagedFile for MmapFile {
    fn num_pages(&self) -> u32 {
        self.num_pages
    }

    fn page_size(&self) -> usize {
        self.page_size
    }

    fn read_page(&self, page: u32) -> Result<PageBuf> {
        check_run(page, 1, self.num_pages)?;
        let start = page as usize * self.page_size;
        Ok(PageBuf::from_bytes(
            &self.bytes()[start..start + self.page_size],
            self.page_size,
        ))
    }

    fn read_page_into(&self, page: u32, out: &mut PageBuf) -> Result<()> {
        assert_eq!(out.len(), self.page_size, "page buffer size mismatch");
        check_run(page, 1, self.num_pages)?;
        let start = page as usize * self.page_size;
        out.as_mut_slice()
            .copy_from_slice(&self.bytes()[start..start + self.page_size]);
        Ok(())
    }

    fn read_run_into(&self, first: u32, out: &mut [u8]) -> Result<()> {
        assert_eq!(
            out.len() % self.page_size,
            0,
            "run buffer must hold whole pages"
        );
        if out.is_empty() {
            return Ok(());
        }
        let count = (out.len() / self.page_size) as u32;
        check_run(first, count, self.num_pages)?;
        let start = first as usize * self.page_size;
        out.copy_from_slice(&self.bytes()[start..start + out.len()]);
        Ok(())
    }

    fn contiguous(&self) -> Option<&[u8]> {
        Some(self.bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagefile::{DiskFile, MemFile};

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("privpath-mmap-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn mmap_serves_the_same_pages_as_disk() {
        let dir = temp_dir("pages");
        let path = dir.join("pages.bin");
        let bytes: Vec<u8> = (0..9 * 256).map(|i| (i * 17 % 251) as u8).collect();
        MemFile::from_bytes(&bytes, 256).persist(&path).unwrap();

        let mapped = MmapFile::open(&path, 256).unwrap();
        let disk = DiskFile::open(&path, 256).unwrap();
        assert_eq!(mapped.num_pages(), 9);
        let mut a = PageBuf::zeroed(256);
        let mut b = PageBuf::zeroed(256);
        for p in 0..9u32 {
            assert_eq!(mapped.read_page(p).unwrap(), disk.read_page(p).unwrap());
            mapped.read_page_into(p, &mut a).unwrap();
            disk.read_page_into(p, &mut b).unwrap();
            assert_eq!(a, b);
        }
        assert!(matches!(
            mapped.read_page(9),
            Err(StorageError::PageOutOfRange { .. })
        ));
        assert_eq!(mapped.contiguous().unwrap(), &bytes[..]);
        // On Linux this is a real mapping; elsewhere the fallback buffer
        // must behave identically (the assertions above already checked it).
        assert_eq!(mapped.is_mapped(), sysmap::supported());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mmap_window_matches_disk_window() {
        let dir = temp_dir("window");
        let path = dir.join("container.bin");
        let mut bytes = vec![0x5Au8; 777]; // unaligned preamble
        let payload: Vec<u8> = (0..6 * 128).map(|i| (i * 7 % 250) as u8).collect();
        bytes.extend_from_slice(&payload);
        std::fs::write(&path, &bytes).unwrap();

        let mapped = MmapFile::open_at(&path, 128, 777, 6).unwrap();
        let disk = DiskFile::open_at(&path, 128, 777, 6).unwrap();
        for p in 0..6u32 {
            assert_eq!(mapped.read_page(p).unwrap(), disk.read_page(p).unwrap());
        }
        let mut run = vec![0u8; 3 * 128];
        mapped.read_run_into(2, &mut run).unwrap();
        assert_eq!(&run[..], &payload[2 * 128..5 * 128]);
        assert!(mapped.read_run_into(5, &mut run).is_err());
        // Window past EOF is the same typed error as the disk driver's.
        assert!(matches!(
            MmapFile::open_at(&path, 128, 777, 7),
            Err(StorageError::UnexpectedEof { .. })
        ));
        assert!(MmapFile::open_at(&path, 0, 0, 1).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mmap_rejects_misaligned_flat_file() {
        let dir = temp_dir("misaligned");
        let path = dir.join("bad.bin");
        std::fs::write(&path, [0u8; 100]).unwrap();
        assert!(matches!(
            MmapFile::open(&path, 64),
            Err(StorageError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
