//! Paged files: the unit of storage the PIR interface operates on.
//!
//! Each database file (`Fh`, `Fl`, `Fi`, `Fd` — or the concatenated `Fi|Fd`
//! of the HY scheme) is a sequence of equal-sized pages. The PIR protocol of
//! Williams & Sion fetches one page at a time and its cost grows with the
//! total number of pages in the file, so the file abstraction exposes exactly
//! `num_pages`, `page_size`, and `read_page`.

use crate::checksum::crc32;
use crate::error::StorageError;
use crate::page::PageBuf;
use crate::Result;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

/// Writes a file crash-safely: `fill` streams the content into a temp file
/// in the destination directory, the temp file is fsynced, then atomically
/// renamed over `path` (and the directory fsynced, best-effort). A crash at
/// any point leaves either the old content or the new content at `path` —
/// never a torn half-write. If `fill` fails the temp file is removed and
/// `path` is untouched.
pub fn atomic_write(
    path: &Path,
    fill: impl FnOnce(&mut std::fs::File) -> Result<()>,
) -> Result<()> {
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| StorageError::Corrupt(format!("not a file path: {}", path.display())))?;
    let mut tmp_name = std::ffi::OsString::from(".");
    tmp_name.push(file_name);
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        fill(&mut f)?;
        f.sync_all()?;
        Ok(())
    })();
    if let Err(e) = result {
        std::fs::remove_file(&tmp).ok();
        return Err(e);
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        std::fs::remove_file(&tmp).ok();
        return Err(e.into());
    }
    // Durability of the rename itself: fsync the directory. Best-effort —
    // some filesystems refuse to sync a directory handle.
    if let Some(d) = dir {
        if let Ok(dh) = std::fs::File::open(d) {
            dh.sync_all().ok();
        }
    }
    Ok(())
}

/// A read-only file of equal-sized pages.
///
/// Implementations must be **immutable and deterministic once served**:
/// every read of the same page returns the same bytes, concurrently from
/// any thread. Sessions across threads share one file behind an `Arc`, the
/// leakage suite's differential equalities compare page bytes bit for bit,
/// and the generation hot-swap path (PR 8) relies on a published
/// `Database` — files included — never changing after the registry hands
/// it out; a "rebuild" is always a new file set under a new generation,
/// never an in-place edit. Page counts are `u32` by protocol: a file holds
/// at most `u32::MAX` pages (the wire's `RoundRequest`/`FileInfo` carry
/// page indices as `u32`).
pub trait PagedFile: Send + Sync {
    /// Number of pages in the file.
    fn num_pages(&self) -> u32;
    /// Page size in bytes (uniform across the file).
    fn page_size(&self) -> usize;
    /// Reads page `page` (zero-based). Fails with
    /// [`StorageError::PageOutOfRange`] for invalid indices.
    fn read_page(&self, page: u32) -> Result<PageBuf>;

    /// Reads page `page` into an existing buffer of the file's page size —
    /// the allocation-free read the batched PIR round path is built on.
    /// The default goes through [`PagedFile::read_page`]; in-memory backends
    /// override it with a straight copy.
    ///
    /// # Panics
    /// Panics if `out.len() != self.page_size()`.
    fn read_page_into(&self, page: u32, out: &mut PageBuf) -> Result<()> {
        assert_eq!(out.len(), self.page_size(), "page buffer size mismatch");
        let buf = self.read_page(page)?;
        out.as_mut_slice().copy_from_slice(buf.as_slice());
        Ok(())
    }

    /// Reads the contiguous run of pages starting at `first` into `out`,
    /// which must hold a whole number of pages (`out.len()` a multiple of
    /// [`PagedFile::page_size`]; a zero-length `out` is a no-op). This is the
    /// batch primitive the linear-scan PIR kernel streams the file through:
    /// backends that can serve a run cheaper than page-by-page override it —
    /// [`DiskFile`] with one positioned read per run instead of one syscall
    /// per page, in-memory and mapped backends with one straight copy.
    ///
    /// The default loops [`PagedFile::read_page`] per page, which keeps
    /// per-page wrappers (fault injection, checksumming) faithful without
    /// their own override.
    ///
    /// # Panics
    /// Panics if `out.len()` is not a multiple of the page size.
    fn read_run_into(&self, first: u32, out: &mut [u8]) -> Result<()> {
        let ps = self.page_size();
        assert_eq!(out.len() % ps, 0, "run buffer must hold whole pages");
        let count = (out.len() / ps) as u32;
        if count == 0 {
            return Ok(());
        }
        check_run(first, count, self.num_pages())?;
        for (i, chunk) in out.chunks_exact_mut(ps).enumerate() {
            let buf = self.read_page(first + i as u32)?;
            chunk.copy_from_slice(buf.as_slice());
        }
        Ok(())
    }

    /// Borrows the whole file as one contiguous byte slice, when the backend
    /// can expose it without copying (flat in-memory buffers, mappings).
    /// `None` means callers must go through the read methods. Integrity- and
    /// fault-layer wrappers deliberately return `None` so per-read
    /// verification can never be bypassed.
    fn contiguous(&self) -> Option<&[u8]> {
        None
    }

    /// Total file size in bytes.
    fn size_bytes(&self) -> u64 {
        self.num_pages() as u64 * self.page_size() as u64
    }
}

/// Validates that the run `first .. first + count` lies inside a file of
/// `pages` pages, surfacing the first out-of-range page like a single-page
/// read would.
pub(crate) fn check_run(first: u32, count: u32, pages: u32) -> Result<()> {
    let beyond = first.checked_add(count).is_none_or(|end| end > pages);
    if beyond {
        return Err(StorageError::PageOutOfRange {
            page: first.max(pages),
            pages,
        });
    }
    Ok(())
}

/// In-memory paged file. The default backend: the paper notes the framework
/// "applies to storage in main memory or a solid state drive" (§3.1), and the
/// in-memory form keeps experiments deterministic and fast while the *cost*
/// of disk access is charged by the PIR cost model.
///
/// Pages are stored as one flat byte buffer, so the file doubles as a
/// zero-copy [`PagedFile::contiguous`] source for the linear-scan kernel.
#[derive(Clone)]
pub struct MemFile {
    bytes: Vec<u8>,
    page_size: usize,
}

impl MemFile {
    /// Builds a file from pre-cut pages.
    ///
    /// # Panics
    /// Panics if pages disagree on size.
    pub fn from_pages(pages: Vec<PageBuf>, page_size: usize) -> Self {
        let mut bytes = Vec::with_capacity(pages.len() * page_size);
        for p in &pages {
            assert_eq!(p.len(), page_size, "all pages must have the declared size");
            bytes.extend_from_slice(p.as_slice());
        }
        MemFile { bytes, page_size }
    }

    /// Builds a file by slicing a flat byte buffer into pages (last page
    /// zero-padded).
    pub fn from_bytes(bytes: &[u8], page_size: usize) -> Self {
        let mut bytes = bytes.to_vec();
        let rem = bytes.len() % page_size;
        if rem != 0 {
            bytes.resize(bytes.len() + page_size - rem, 0);
        }
        MemFile { bytes, page_size }
    }

    /// Empty file.
    pub fn empty(page_size: usize) -> Self {
        MemFile {
            bytes: Vec::new(),
            page_size,
        }
    }

    /// Appends a page; returns its page number.
    pub fn push_page(&mut self, page: PageBuf) -> u32 {
        assert_eq!(page.len(), self.page_size);
        self.bytes.extend_from_slice(page.as_slice());
        self.num_pages() - 1
    }

    /// Concatenates another file of the same page size onto this one,
    /// returning the page offset at which it starts. Used by the HY scheme,
    /// which stores `Fi` and `Fd` "into a single physical file" so the
    /// adversary cannot tell region-set queries from subgraph queries.
    ///
    /// The returned offset is part of the *published* file layout: HY bakes
    /// it into the query plan, so concatenation order must be fixed at
    /// build time — concatenating in a different order produces a
    /// different (still valid) generation, not an equivalent one.
    pub fn concat(&mut self, other: &MemFile) -> u32 {
        assert_eq!(self.page_size, other.page_size);
        let off = self.num_pages();
        self.bytes.extend_from_slice(&other.bytes);
        off
    }

    /// Borrows page `page` without copying — the in-memory fast path for
    /// callers that only need to look at a page (CRC computation, tests).
    pub fn page(&self, page: u32) -> Result<&[u8]> {
        let pages = self.num_pages();
        if page >= pages {
            return Err(StorageError::PageOutOfRange { page, pages });
        }
        let start = page as usize * self.page_size;
        Ok(&self.bytes[start..start + self.page_size])
    }

    /// Writes the file to disk (one flat stream of pages), crash-safely:
    /// the pages stream into a temp file which is fsynced and atomically
    /// renamed into place, so a crash mid-write never leaves a torn file at
    /// `path`.
    pub fn persist(&self, path: &Path) -> Result<()> {
        self.persist_with(path, |_| Ok(()))
    }

    /// [`MemFile::persist`] with a fault hook called after each page write —
    /// the injection point the crash-safety regression test uses to fail the
    /// write mid-stream and observe that `path` is untouched.
    pub fn persist_with(
        &self,
        path: &Path,
        mut after_page: impl FnMut(u32) -> Result<()>,
    ) -> Result<()> {
        atomic_write(path, |f| {
            for (i, p) in self.bytes.chunks(self.page_size).enumerate() {
                f.write_all(p)?;
                after_page(i as u32)?;
            }
            Ok(())
        })
    }
}

impl PagedFile for MemFile {
    fn num_pages(&self) -> u32 {
        self.bytes.len().checked_div(self.page_size).unwrap_or(0) as u32
    }

    fn page_size(&self) -> usize {
        self.page_size
    }

    fn read_page(&self, page: u32) -> Result<PageBuf> {
        Ok(PageBuf::from_bytes(self.page(page)?, self.page_size))
    }

    fn read_page_into(&self, page: u32, out: &mut PageBuf) -> Result<()> {
        assert_eq!(out.len(), self.page_size, "page buffer size mismatch");
        out.as_mut_slice().copy_from_slice(self.page(page)?);
        Ok(())
    }

    fn read_run_into(&self, first: u32, out: &mut [u8]) -> Result<()> {
        assert_eq!(
            out.len() % self.page_size.max(1),
            0,
            "run buffer must hold whole pages"
        );
        if out.is_empty() {
            return Ok(());
        }
        let count = (out.len() / self.page_size) as u32;
        check_run(first, count, self.num_pages())?;
        let start = first as usize * self.page_size;
        out.copy_from_slice(&self.bytes[start..start + out.len()]);
        Ok(())
    }

    fn contiguous(&self) -> Option<&[u8]> {
        Some(&self.bytes)
    }
}

/// Disk-backed paged file (read-only), for databases persisted with
/// [`MemFile::persist`] or embedded in a snapshot (a page window at a byte
/// offset inside a larger container file).
pub struct DiskFile {
    file: parking_lot_free::Mutex<std::fs::File>,
    byte_offset: u64,
    num_pages: u32,
    page_size: usize,
}

// Tiny shim so this crate stays dependency-free: std Mutex with the same call
// shape we use from parking_lot elsewhere.
mod parking_lot_free {
    pub struct Mutex<T>(std::sync::Mutex<T>);
    impl<T> Mutex<T> {
        pub fn new(v: T) -> Self {
            Mutex(std::sync::Mutex::new(v))
        }
        pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
            self.0.lock().unwrap_or_else(|e| e.into_inner())
        }
    }
}

impl DiskFile {
    /// Opens a flat page stream written by [`MemFile::persist`].
    pub fn open(path: &Path, page_size: usize) -> Result<Self> {
        if page_size == 0 {
            return Err(StorageError::Corrupt("page size must be non-zero".into()));
        }
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        if len % page_size as u64 != 0 {
            return Err(StorageError::Corrupt(format!(
                "file length {len} is not a multiple of page size {page_size}"
            )));
        }
        Ok(DiskFile {
            file: parking_lot_free::Mutex::new(file),
            byte_offset: 0,
            num_pages: (len / page_size as u64) as u32,
            page_size,
        })
    }

    /// Opens a window of `num_pages` pages starting `byte_offset` bytes into
    /// `path` — how snapshot files serve each embedded database file without
    /// extracting it. Fails with a typed error if the window runs past the
    /// end of the container.
    pub fn open_at(
        path: &Path,
        page_size: usize,
        byte_offset: u64,
        num_pages: u32,
    ) -> Result<Self> {
        if page_size == 0 {
            return Err(StorageError::Corrupt("page size must be non-zero".into()));
        }
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        let span = num_pages as u64 * page_size as u64;
        let end = byte_offset.checked_add(span).ok_or_else(|| {
            StorageError::Corrupt(format!(
                "file window overflows: offset {byte_offset} + {span} bytes"
            ))
        })?;
        if end > len {
            return Err(StorageError::UnexpectedEof {
                wanted: end as usize,
                remaining: len as usize,
            });
        }
        Ok(DiskFile {
            file: parking_lot_free::Mutex::new(file),
            byte_offset,
            num_pages,
            page_size,
        })
    }
}

impl PagedFile for DiskFile {
    fn num_pages(&self) -> u32 {
        self.num_pages
    }

    fn page_size(&self) -> usize {
        self.page_size
    }

    fn read_page(&self, page: u32) -> Result<PageBuf> {
        let mut buf = PageBuf::zeroed(self.page_size);
        self.read_page_into(page, &mut buf)?;
        Ok(buf)
    }

    fn read_page_into(&self, page: u32, out: &mut PageBuf) -> Result<()> {
        assert_eq!(out.len(), self.page_size, "page buffer size mismatch");
        if page >= self.num_pages {
            return Err(StorageError::PageOutOfRange {
                page,
                pages: self.num_pages,
            });
        }
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(
            self.byte_offset + page as u64 * self.page_size as u64,
        ))?;
        f.read_exact(out.as_mut_slice())?;
        Ok(())
    }

    /// One positioned read serves the whole run — the syscall batching the
    /// linear-scan kernel's streaming pass is built on (one seek+read per
    /// 64-page run instead of one per page).
    fn read_run_into(&self, first: u32, out: &mut [u8]) -> Result<()> {
        assert_eq!(
            out.len() % self.page_size,
            0,
            "run buffer must hold whole pages"
        );
        if out.is_empty() {
            return Ok(());
        }
        let count = (out.len() / self.page_size) as u32;
        check_run(first, count, self.num_pages)?;
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(
            self.byte_offset + first as u64 * self.page_size as u64,
        ))?;
        f.read_exact(out)?;
        Ok(())
    }
}

/// Integrity layer over any [`PagedFile`]: verifies every read against a
/// per-page CRC-32 table (from the snapshot manifest) and surfaces a
/// mismatch as [`StorageError::PageCorrupt`] with file/page identity. Layered
/// *outside* any fault-injecting wrapper, it turns injected bit-flips and
/// short reads into typed corruption errors instead of wrong answers.
pub struct ChecksumFile {
    inner: Arc<dyn PagedFile>,
    crcs: Vec<u32>,
    name: String,
}

impl ChecksumFile {
    /// Wraps `inner`, checking each page read against `crcs`.
    ///
    /// # Panics
    /// Panics if `crcs.len() != inner.num_pages()` — the manifest and the
    /// driver must agree on the page count before serving starts (the
    /// snapshot loader validates this with a typed error).
    pub fn new(name: impl Into<String>, inner: Arc<dyn PagedFile>, crcs: Vec<u32>) -> Self {
        assert_eq!(
            crcs.len(),
            inner.num_pages() as usize,
            "checksum table must cover every page"
        );
        ChecksumFile {
            inner,
            crcs,
            name: name.into(),
        }
    }

    /// Name reported in [`StorageError::PageCorrupt`].
    pub fn name(&self) -> &str {
        &self.name
    }

    fn verify(&self, page: u32, bytes: &[u8]) -> Result<()> {
        let expected = self.crcs[page as usize];
        let actual = crc32(bytes);
        if actual != expected {
            return Err(StorageError::PageCorrupt {
                file: self.name.clone(),
                page,
                expected,
                actual,
            });
        }
        Ok(())
    }
}

impl PagedFile for ChecksumFile {
    fn num_pages(&self) -> u32 {
        self.inner.num_pages()
    }

    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn read_page(&self, page: u32) -> Result<PageBuf> {
        let buf = self.inner.read_page(page)?;
        self.verify(page, buf.as_slice())?;
        Ok(buf)
    }

    fn read_page_into(&self, page: u32, out: &mut PageBuf) -> Result<()> {
        self.inner.read_page_into(page, out)?;
        self.verify(page, out.as_slice())
    }

    /// The run read is delegated to the inner driver (so its batching is
    /// kept), then every page of the run is verified individually — a run is
    /// never cheaper to corrupt than a page.
    fn read_run_into(&self, first: u32, out: &mut [u8]) -> Result<()> {
        let ps = self.page_size();
        assert_eq!(out.len() % ps, 0, "run buffer must hold whole pages");
        if out.is_empty() {
            return Ok(());
        }
        self.inner.read_run_into(first, out)?;
        for (i, chunk) in out.chunks_exact(ps).enumerate() {
            self.verify(first + i as u32, chunk)?;
        }
        Ok(())
    }

    // Deliberately NOT forwarding `contiguous`: handing out the raw inner
    // bytes would let scan kernels bypass per-read CRC verification.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::DEFAULT_PAGE_SIZE;

    #[test]
    fn memfile_round_trip() {
        let bytes: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        let f = MemFile::from_bytes(&bytes, DEFAULT_PAGE_SIZE);
        assert_eq!(f.num_pages(), 3);
        assert_eq!(f.size_bytes(), 3 * 4096);
        let p0 = f.read_page(0).unwrap();
        assert_eq!(&p0.as_slice()[..16], &bytes[..16]);
        let p2 = f.read_page(2).unwrap();
        // tail is zero padded
        assert_eq!(
            p2.as_slice()[10_000 - 2 * 4096..],
            vec![0u8; 3 * 4096 - 10_000][..]
        );
        assert!(f.read_page(3).is_err());
    }

    #[test]
    fn read_page_into_reuses_the_buffer() {
        let bytes: Vec<u8> = (0..6000).map(|i| (i % 250) as u8).collect();
        let mem = MemFile::from_bytes(&bytes, DEFAULT_PAGE_SIZE);
        let mut buf = PageBuf::zeroed(DEFAULT_PAGE_SIZE);
        for p in (0..mem.num_pages()).rev() {
            mem.read_page_into(p, &mut buf).unwrap();
            assert_eq!(buf, mem.read_page(p).unwrap());
            assert_eq!(buf.as_slice(), mem.page(p).unwrap());
        }
        assert!(mem.read_page_into(99, &mut buf).is_err());
    }

    #[test]
    fn memfile_push_and_concat() {
        let mut a = MemFile::empty(64);
        a.push_page(PageBuf::from_bytes(&[1], 64));
        let mut b = MemFile::empty(64);
        b.push_page(PageBuf::from_bytes(&[2], 64));
        b.push_page(PageBuf::from_bytes(&[3], 64));
        let off = a.concat(&b);
        assert_eq!(off, 1);
        assert_eq!(a.num_pages(), 3);
        assert_eq!(a.read_page(1).unwrap().as_slice()[0], 2);
        assert_eq!(a.read_page(2).unwrap().as_slice()[0], 3);
    }

    #[test]
    fn diskfile_round_trip() {
        let dir = std::env::temp_dir().join(format!("privpath-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.bin");
        let bytes: Vec<u8> = (0..9000).map(|i| (i % 253) as u8).collect();
        let mem = MemFile::from_bytes(&bytes, DEFAULT_PAGE_SIZE);
        mem.persist(&path).unwrap();

        let disk = DiskFile::open(&path, DEFAULT_PAGE_SIZE).unwrap();
        assert_eq!(disk.num_pages(), mem.num_pages());
        let mut buf = PageBuf::zeroed(DEFAULT_PAGE_SIZE);
        for p in 0..mem.num_pages() {
            assert_eq!(disk.read_page(p).unwrap(), mem.read_page(p).unwrap());
            // default trait impl of read_page_into (DiskFile does not override)
            disk.read_page_into(p, &mut buf).unwrap();
            assert_eq!(buf, mem.read_page(p).unwrap());
        }
        assert!(disk.read_page(99).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("privpath-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn persist_failure_leaves_no_partial_file() {
        let dir = temp_dir("atomic");
        let path = dir.join("out.bin");
        let bytes: Vec<u8> = (0..3 * 4096).map(|i| (i % 255) as u8).collect();
        let mem = MemFile::from_bytes(&bytes, DEFAULT_PAGE_SIZE);

        // Fault injected after the second page: the write dies mid-stream.
        let err = mem
            .persist_with(&path, |page| {
                if page == 1 {
                    Err(StorageError::Io(std::io::Error::other("disk died")))
                } else {
                    Ok(())
                }
            })
            .unwrap_err();
        assert!(matches!(err, StorageError::Io(_)));
        // No partial file at the destination, no temp litter in the dir.
        assert!(!path.exists(), "failed persist must not leave a torn file");
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);

        // Now overwrite semantics: an existing good file survives a failed
        // re-persist untouched.
        mem.persist(&path).unwrap();
        let before = std::fs::read(&path).unwrap();
        let other = MemFile::from_bytes(&vec![7u8; 2 * 4096], DEFAULT_PAGE_SIZE);
        other
            .persist_with(&path, |_| {
                Err(StorageError::Io(std::io::Error::other("boom")))
            })
            .unwrap_err();
        assert_eq!(std::fs::read(&path).unwrap(), before);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_write_rejects_bare_root() {
        assert!(atomic_write(Path::new("/"), |_| Ok(())).is_err());
    }

    #[test]
    fn diskfile_open_at_window() {
        let dir = temp_dir("window");
        let path = dir.join("container.bin");
        let mut bytes = vec![0xEEu8; 100]; // preamble the window must skip
        let payload: Vec<u8> = (0..4 * 64).map(|i| (i % 200) as u8).collect();
        bytes.extend_from_slice(&payload);
        std::fs::write(&path, &bytes).unwrap();

        let disk = DiskFile::open_at(&path, 64, 100, 4).unwrap();
        assert_eq!(disk.num_pages(), 4);
        for p in 0..4u32 {
            let got = disk.read_page(p).unwrap();
            assert_eq!(
                got.as_slice(),
                &payload[p as usize * 64..(p as usize + 1) * 64]
            );
        }
        assert!(matches!(
            disk.read_page(4),
            Err(StorageError::PageOutOfRange { .. })
        ));
        // Window past EOF is a typed error at open time.
        assert!(matches!(
            DiskFile::open_at(&path, 64, 100, 5),
            Err(StorageError::UnexpectedEof { .. })
        ));
        assert!(DiskFile::open_at(&path, 0, 0, 1).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checksum_file_passes_clean_and_catches_corruption() {
        let bytes: Vec<u8> = (0..3 * 64).map(|i| (i * 7 % 251) as u8).collect();
        let mem = MemFile::from_bytes(&bytes, 64);
        let crcs: Vec<u32> = (0..mem.num_pages())
            .map(|p| crc32(mem.page(p).unwrap()))
            .collect();

        let clean = ChecksumFile::new("Fd", Arc::new(mem.clone()), crcs.clone());
        let mut buf = PageBuf::zeroed(64);
        for p in 0..clean.num_pages() {
            assert_eq!(clean.read_page(p).unwrap(), mem.read_page(p).unwrap());
            clean.read_page_into(p, &mut buf).unwrap();
            assert_eq!(buf.as_slice(), mem.page(p).unwrap());
        }

        // Flip one bit in the backing file: the read surfaces PageCorrupt
        // naming the file and page.
        let tampered = mem.clone();
        let mut page1 = tampered.read_page(1).unwrap();
        page1.as_mut_slice()[5] ^= 0x10;
        let pages: Vec<PageBuf> = (0..3)
            .map(|p| {
                if p == 1 {
                    page1.clone()
                } else {
                    tampered.read_page(p).unwrap()
                }
            })
            .collect();
        let tampered = MemFile::from_pages(pages, 64);
        let bad = ChecksumFile::new("Fd", Arc::new(tampered), crcs);
        assert!(bad.read_page(0).is_ok());
        match bad.read_page(1) {
            Err(StorageError::PageCorrupt { file, page, .. }) => {
                assert_eq!(file, "Fd");
                assert_eq!(page, 1);
            }
            other => panic!("expected PageCorrupt, got {other:?}"),
        }
        assert!(matches!(
            bad.read_page_into(1, &mut buf),
            Err(StorageError::PageCorrupt { .. })
        ));
    }

    #[test]
    fn run_reads_match_page_reads_across_drivers() {
        let dir = temp_dir("runs");
        let path = dir.join("runs.bin");
        let bytes: Vec<u8> = (0..7 * 64).map(|i| (i * 11 % 241) as u8).collect();
        let mem = MemFile::from_bytes(&bytes, 64);
        mem.persist(&path).unwrap();
        let disk = DiskFile::open(&path, 64).unwrap();
        let crcs: Vec<u32> = (0..mem.num_pages())
            .map(|p| crc32(mem.page(p).unwrap()))
            .collect();
        let guarded = ChecksumFile::new("F", Arc::new(mem.clone()), crcs);

        let drivers: [&dyn PagedFile; 3] = [&mem, &disk, &guarded];
        for f in drivers {
            // every (first, count) window, including the empty run and the
            // partial run that ends exactly at the last page
            for first in 0..=7u32 {
                for count in 0..=(7 - first) {
                    let mut run = vec![0u8; count as usize * 64];
                    f.read_run_into(first, &mut run).unwrap();
                    for i in 0..count {
                        assert_eq!(
                            &run[i as usize * 64..(i as usize + 1) * 64],
                            mem.page(first + i).unwrap(),
                        );
                    }
                }
            }
            // a run poking past the end is a typed error, like a page read
            let mut run = vec![0u8; 2 * 64];
            assert!(matches!(
                f.read_run_into(6, &mut run),
                Err(StorageError::PageOutOfRange { .. })
            ));
            assert!(matches!(
                f.read_run_into(7, &mut run),
                Err(StorageError::PageOutOfRange { .. })
            ));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn default_run_read_loops_page_reads() {
        // A driver that only implements read_page still serves runs.
        struct Minimal(MemFile);
        impl PagedFile for Minimal {
            fn num_pages(&self) -> u32 {
                self.0.num_pages()
            }
            fn page_size(&self) -> usize {
                self.0.page_size()
            }
            fn read_page(&self, page: u32) -> Result<PageBuf> {
                self.0.read_page(page)
            }
        }
        let bytes: Vec<u8> = (0..5 * 64).map(|i| (i % 199) as u8).collect();
        let f = Minimal(MemFile::from_bytes(&bytes, 64));
        let mut run = vec![0u8; 3 * 64];
        f.read_run_into(1, &mut run).unwrap();
        assert_eq!(&run[..], &bytes[64..4 * 64]);
        assert!(f.read_run_into(3, &mut run).is_err());
        assert!(f.contiguous().is_none(), "default is no zero-copy exposure");
    }

    #[test]
    fn contiguous_is_exposed_only_where_verification_allows() {
        let bytes: Vec<u8> = (0..3 * 64).map(|i| (i % 97) as u8).collect();
        let mem = MemFile::from_bytes(&bytes, 64);
        assert_eq!(mem.contiguous().unwrap(), &bytes[..]);
        let crcs: Vec<u32> = (0..3).map(|p| crc32(mem.page(p).unwrap())).collect();
        let guarded = ChecksumFile::new("F", Arc::new(mem), crcs);
        // the integrity wrapper must not hand out unverified raw bytes
        assert!(guarded.contiguous().is_none());
    }

    #[test]
    fn checksum_run_read_catches_corruption_anywhere_in_the_run() {
        let bytes: Vec<u8> = (0..4 * 64).map(|i| (i * 3 % 251) as u8).collect();
        let mem = MemFile::from_bytes(&bytes, 64);
        let mut crcs: Vec<u32> = (0..4).map(|p| crc32(mem.page(p).unwrap())).collect();
        crcs[2] ^= 1; // manifest disagrees with page 2
        let bad = ChecksumFile::new("Fd", Arc::new(mem), crcs);
        let mut run = vec![0u8; 4 * 64];
        match bad.read_run_into(0, &mut run) {
            Err(StorageError::PageCorrupt { page, .. }) => assert_eq!(page, 2),
            other => panic!("expected PageCorrupt, got {other:?}"),
        }
        // runs before the bad page stay clean
        let mut run = vec![0u8; 2 * 64];
        bad.read_run_into(0, &mut run).unwrap();
    }

    #[test]
    fn diskfile_rejects_misaligned() {
        let dir = std::env::temp_dir().join(format!("privpath-test2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.bin");
        std::fs::write(&path, [0u8; 100]).unwrap();
        assert!(matches!(
            DiskFile::open(&path, 64),
            Err(StorageError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
