//! Disk-page substrate for the privpath workspace.
//!
//! The paper's LBS stores every database file in equal-sized pages (4 KByte in
//! the evaluation, Table 2) and the PIR interface retrieves exactly one page
//! per request. This crate provides:
//!
//! * [`page`] — page-size constants and the [`page::PageBuf`] fixed-size buffer;
//! * [`codec`] — little-endian byte readers/writers plus varint helpers used by
//!   every file format in the system;
//! * [`pagefile`] — the [`pagefile::PagedFile`] abstraction with in-memory and
//!   on-disk backends (the paper's framework "applies to storage in main
//!   memory or a solid state drive" as well, §3.1);
//! * [`mmapfile`] — the memory-mapped driver behind the same trait (raw
//!   syscalls via the vendored `sysmap` shim, buffered fallback elsewhere);
//! * [`checksum`] — CRC-32 used to detect tampering when running against the
//!   fault-injecting PIR backend (extension beyond the paper's
//!   honest-but-curious adversary).

pub mod checksum;
pub mod codec;
pub mod error;
pub mod mmapfile;
pub mod page;
pub mod pagefile;
pub mod snapshot;

pub use checksum::crc32;
pub use codec::{ByteReader, ByteWriter};
pub use error::StorageError;
pub use mmapfile::MmapFile;
pub use page::{PageBuf, DEFAULT_PAGE_SIZE};
pub use pagefile::{atomic_write, ChecksumFile, DiskFile, MemFile, PagedFile};
pub use snapshot::{SnapshotEntry, SnapshotReader, SnapshotWriter};

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, StorageError>;
