//! Little-endian byte codecs used by every file format in the system.
//!
//! All on-"disk" records (header, look-up entries, region sets, subgraphs,
//! region data) are serialized through [`ByteWriter`] and decoded through
//! [`ByteReader`]. Varint encoding is used by the optional region-data
//! compression extension (DESIGN.md §7).

use crate::error::StorageError;
use crate::Result;

/// Append-only little-endian writer over a growable byte buffer.
#[derive(Default, Debug, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter { buf: Vec::new() }
    }

    /// Creates a writer with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finishes and returns the buffer.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Writes a single byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Writes a little-endian `u16`.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes a little-endian `i32`.
    pub fn i32(&mut self, v: i32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes a little-endian IEEE-754 `f64`.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes raw bytes verbatim.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(v);
        self
    }

    /// Writes a `u64` as a LEB128 varint (1–10 bytes).
    pub fn varint(&mut self, mut v: u64) -> &mut Self {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return self;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Writes a length-prefixed (u32) byte string.
    pub fn len_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(v.len() as u32);
        self.bytes(v)
    }

    /// Overwrites 2 bytes at `pos` with a little-endian `u16` (for patching
    /// offset directories after the fact).
    ///
    /// # Panics
    /// Panics if `pos + 2` exceeds the bytes written so far.
    pub fn patch_u16(&mut self, pos: usize, v: u16) {
        self.buf[pos..pos + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Overwrites 4 bytes at `pos` with a little-endian `u32`.
    ///
    /// # Panics
    /// Panics if `pos + 4` exceeds the bytes written so far.
    pub fn patch_u32(&mut self, pos: usize, v: u32) {
        self.buf[pos..pos + 4].copy_from_slice(&v.to_le_bytes());
    }
}

/// Sequential little-endian reader over a byte slice.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Repositions the cursor (used by in-page offset directories).
    pub fn seek(&mut self, pos: usize) -> Result<()> {
        if pos > self.buf.len() {
            return Err(StorageError::UnexpectedEof {
                wanted: pos,
                remaining: self.buf.len(),
            });
        }
        self.pos = pos;
        Ok(())
    }

    /// Bytes remaining after the cursor.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(StorageError::UnexpectedEof {
                wanted: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a single byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes(s.try_into().expect("8-byte slice")))
    }

    /// Reads a little-endian `i32`.
    pub fn i32(&mut self) -> Result<i32> {
        let s = self.take(4)?;
        Ok(i32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Reads a little-endian IEEE-754 `f64`.
    pub fn f64(&mut self) -> Result<f64> {
        let s = self.take(8)?;
        Ok(f64::from_le_bytes(s.try_into().expect("8-byte slice")))
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Reads a LEB128 varint (inverse of [`ByteWriter::varint`]).
    pub fn varint(&mut self) -> Result<u64> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 64 {
                return Err(StorageError::Corrupt("varint longer than 10 bytes".into()));
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Reads a length-prefixed (u32) byte string.
    pub fn len_bytes(&mut self) -> Result<&'a [u8]> {
        let n = self.u32()? as usize;
        self.take(n)
    }
}

/// Zig-zag encodes a signed value so small magnitudes produce small varints.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_scalars() {
        let mut w = ByteWriter::new();
        w.u8(7)
            .u16(65535)
            .u32(123_456_789)
            .u64(u64::MAX)
            .i32(-42)
            .f64(3.5);
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 65535);
        assert_eq!(r.u32().unwrap(), 123_456_789);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i32().unwrap(), -42);
        assert_eq!(r.f64().unwrap(), 3.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn eof_is_reported() {
        let buf = [1u8, 2];
        let mut r = ByteReader::new(&buf);
        assert!(matches!(
            r.u32(),
            Err(StorageError::UnexpectedEof {
                wanted: 4,
                remaining: 2
            })
        ));
    }

    #[test]
    fn patching_offsets() {
        let mut w = ByteWriter::new();
        w.u16(0).u32(0).u8(9);
        w.patch_u16(0, 513);
        w.patch_u32(2, 0xdead_beef);
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u16().unwrap(), 513);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u8().unwrap(), 9);
    }

    #[test]
    fn seek_within_bounds() {
        let buf = [1u8, 2, 3, 4];
        let mut r = ByteReader::new(&buf);
        r.seek(2).unwrap();
        assert_eq!(r.u8().unwrap(), 3);
        assert!(r.seek(5).is_err());
    }

    #[test]
    fn len_bytes_round_trip() {
        let mut w = ByteWriter::new();
        w.len_bytes(b"hello");
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.len_bytes().unwrap(), b"hello");
    }

    #[test]
    fn varint_known_values() {
        for (v, expect) in [
            (0u64, vec![0u8]),
            (127, vec![127]),
            (128, vec![0x80, 1]),
            (300, vec![0xac, 2]),
        ] {
            let mut w = ByteWriter::new();
            w.varint(v);
            assert_eq!(w.as_slice(), expect.as_slice(), "encoding of {v}");
        }
    }

    #[test]
    fn corrupt_varint_detected() {
        let buf = [0xffu8; 11];
        let mut r = ByteReader::new(&buf);
        assert!(matches!(r.varint(), Err(StorageError::Corrupt(_))));
    }

    proptest! {
        #[test]
        fn varint_round_trip(v in any::<u64>()) {
            let mut w = ByteWriter::new();
            w.varint(v);
            let buf = w.into_vec();
            let mut r = ByteReader::new(&buf);
            prop_assert_eq!(r.varint().unwrap(), v);
            prop_assert_eq!(r.remaining(), 0);
        }

        #[test]
        fn zigzag_round_trip(v in any::<i64>()) {
            prop_assert_eq!(unzigzag(zigzag(v)), v);
        }

        #[test]
        fn zigzag_small_values_small(v in -1000i64..1000) {
            // small magnitudes encode to <= 2 varint bytes
            let mut w = ByteWriter::new();
            w.varint(zigzag(v));
            prop_assert!(w.len() <= 2);
        }

        #[test]
        fn mixed_sequence_round_trip(vals in proptest::collection::vec(any::<u32>(), 0..100)) {
            let mut w = ByteWriter::new();
            for &v in &vals { w.u32(v); }
            let buf = w.into_vec();
            let mut r = ByteReader::new(&buf);
            for &v in &vals {
                prop_assert_eq!(r.u32().unwrap(), v);
            }
            prop_assert_eq!(r.remaining(), 0);
        }
    }
}
