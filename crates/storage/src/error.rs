//! Error type shared by the storage layer.

use std::fmt;

/// Errors raised by the page/codec/file layer.
#[derive(Debug)]
pub enum StorageError {
    /// A read ran past the end of the buffer being decoded.
    UnexpectedEof {
        /// Bytes requested by the failed read.
        wanted: usize,
        /// Bytes remaining in the buffer.
        remaining: usize,
    },
    /// A record was too large to fit in a single page where the format
    /// requires it to.
    RecordTooLarge {
        /// Size of the offending record in bytes.
        record: usize,
        /// Page capacity in bytes.
        capacity: usize,
    },
    /// A page index was out of range for the file.
    PageOutOfRange {
        /// Requested page number.
        page: u32,
        /// Number of pages in the file.
        pages: u32,
    },
    /// The decoded bytes violated the expected format.
    Corrupt(String),
    /// Checksum mismatch — the page content was tampered with or damaged.
    ChecksumMismatch {
        /// Checksum stored with the page.
        expected: u32,
        /// Checksum recomputed over the payload.
        actual: u32,
    },
    /// A page read returned bytes whose checksum disagrees with the
    /// snapshot manifest — bit rot or tampering, with file/page identity so
    /// the operator knows exactly what to restore. Always fatal: re-reading
    /// damaged media does not help.
    PageCorrupt {
        /// Name of the paged file the bad read came from.
        file: String,
        /// Zero-based page index within that file.
        page: u32,
        /// Checksum recorded in the snapshot manifest.
        expected: u32,
        /// Checksum recomputed over the bytes actually read.
        actual: u32,
    },
    /// Underlying I/O failure (disk-backed files only).
    Io(std::io::Error),
}

impl StorageError {
    /// True for failures where retrying the same read can plausibly succeed
    /// (interrupted syscalls, timeouts). Corruption and structural errors
    /// are fatal: the bytes on disk will not improve on a second look.
    pub fn is_transient(&self) -> bool {
        match self {
            StorageError::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::Interrupted
                    | std::io::ErrorKind::TimedOut
                    | std::io::ErrorKind::WouldBlock
            ),
            _ => false,
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnexpectedEof { wanted, remaining } => {
                write!(
                    f,
                    "unexpected EOF: wanted {wanted} bytes, {remaining} remaining"
                )
            }
            StorageError::RecordTooLarge { record, capacity } => {
                write!(
                    f,
                    "record of {record} bytes exceeds page capacity {capacity}"
                )
            }
            StorageError::PageOutOfRange { page, pages } => {
                write!(f, "page {page} out of range (file has {pages} pages)")
            }
            StorageError::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            StorageError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "checksum mismatch: stored {expected:#010x}, computed {actual:#010x}"
                )
            }
            StorageError::PageCorrupt {
                file,
                page,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "page corrupt: {file} page {page}: manifest crc {expected:#010x}, read {actual:#010x}"
                )
            }
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StorageError::UnexpectedEof {
            wanted: 8,
            remaining: 3,
        };
        assert!(e.to_string().contains("wanted 8"));
        let e = StorageError::RecordTooLarge {
            record: 5000,
            capacity: 4096,
        };
        assert!(e.to_string().contains("5000"));
        let e = StorageError::PageOutOfRange { page: 9, pages: 4 };
        assert!(e.to_string().contains("page 9"));
        let e = StorageError::ChecksumMismatch {
            expected: 1,
            actual: 2,
        };
        assert!(e.to_string().contains("checksum"));
    }

    #[test]
    fn page_corrupt_names_the_page() {
        let e = StorageError::PageCorrupt {
            file: "Fd".into(),
            page: 17,
            expected: 0xdead_beef,
            actual: 0x1234_5678,
        };
        let s = e.to_string();
        assert!(s.contains("Fd"));
        assert!(s.contains("page 17"));
        assert!(s.contains("0xdeadbeef"));
        assert!(!e.is_transient());
    }

    #[test]
    fn transient_taxonomy() {
        for kind in [
            std::io::ErrorKind::Interrupted,
            std::io::ErrorKind::TimedOut,
            std::io::ErrorKind::WouldBlock,
        ] {
            let e = StorageError::Io(std::io::Error::new(kind, "flaky"));
            assert!(e.is_transient(), "{kind:?} should be transient");
        }
        let e = StorageError::Io(std::io::Error::other("dead disk"));
        assert!(!e.is_transient());
        assert!(!StorageError::Corrupt("x".into()).is_transient());
        assert!(!StorageError::ChecksumMismatch {
            expected: 1,
            actual: 2
        }
        .is_transient());
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("boom");
        let e: StorageError = io.into();
        assert!(matches!(e, StorageError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
