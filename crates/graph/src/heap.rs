//! The shared indexed binary min-heap kernel behind every Dijkstra in the
//! system.
//!
//! Both the offline build path (the border-node searches of the §5.2
//! pre-computation, landmark vectors, the canonical trees of
//! [`crate::dijkstra`]) and the client query hot path run Dijkstra in tight
//! loops; a `BinaryHeap<Reverse<(Dist, u32)>>` with lazy deletion allocates
//! per run and carries stale entries. This kernel is the alternative every
//! caller shares: dense slots, decrease-key (never a stale entry), keys
//! stored inline, and buffers that are reused — not reallocated — across
//! runs.
//!
//! Entries are ordered by a `(u64, u32)` key pair: the primary key is the
//! tentative distance, the secondary key is the deterministic tie-break (the
//! node id for graph searches, the external node id for the client's
//! interned arena). Pop order is therefore exactly the lazy-heap pop order
//! of the implementations this kernel replaced — the canonical settle
//! orders, and everything derived from them, are bit-identical.

/// Sentinel for "slot not in the heap".
const NOT_IN_HEAP: u32 = u32::MAX;

/// One heap element: the slot's key, stored inline so comparisons touch a
/// single contiguous array (the locality that lets the kernel keep pace
/// with `std`'s `BinaryHeap` while supporting decrease-key).
#[derive(Debug, Clone, Copy)]
struct Entry {
    key: (u64, u32),
    slot: u32,
}

/// An indexed binary min-heap over dense `u32` slots keyed by
/// `(primary, tie_break)` pairs.
///
/// Both buffers (the entry array and the position index) ratchet up to the
/// high-water slot count and are never shrunk; [`reset`](Self::reset) and
/// the incremental [`clear_drained`](Self::clear_drained) keep steady-state
/// reuse allocation-free.
///
/// ```
/// use privpath_graph::heap::IndexedMinHeap;
/// let mut h = IndexedMinHeap::new();
/// h.reset(4);
/// h.push(2, (10, 2));
/// h.push(0, (10, 0));
/// h.push(1, (5, 1));
/// h.decrease(2, (1, 2));
/// assert_eq!(h.pop(), Some(2));
/// assert_eq!(h.pop(), Some(1));
/// assert_eq!(h.pop(), Some(0)); // tie on primary broken by secondary
/// assert_eq!(h.pop(), None);
/// ```
#[derive(Debug, Default, Clone)]
pub struct IndexedMinHeap {
    /// Heap array of `(key, slot)` entries (index 0 = minimum).
    heap: Vec<Entry>,
    /// Slot → heap position (`NOT_IN_HEAP` when absent).
    pos: Vec<u32>,
}

impl IndexedMinHeap {
    /// An empty heap (no slots yet; call [`reset`](Self::reset)).
    pub fn new() -> Self {
        Self::default()
    }

    /// Empties the heap and sizes it for `n` slots. O(len) when the heap
    /// was drained by pops (the common full-Dijkstra case), O(n) only when
    /// the slot space grows.
    pub fn reset(&mut self, n: usize) {
        self.clear_drained();
        if self.pos.len() < n {
            self.pos.resize(n, NOT_IN_HEAP);
        }
    }

    /// Extends the slot space to `n` without disturbing enqueued entries —
    /// for arenas that grow mid-search.
    pub fn ensure(&mut self, n: usize) {
        if self.pos.len() < n {
            self.pos.resize(n, NOT_IN_HEAP);
        }
    }

    /// Removes any remaining entries in O(remaining) — the cheap epilogue
    /// for early-terminated searches.
    pub fn clear_drained(&mut self) {
        for e in &self.heap {
            self.pos[e.slot as usize] = NOT_IN_HEAP;
        }
        self.heap.clear();
    }

    /// Number of enqueued slots.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no slot is enqueued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// True if `slot` is currently enqueued.
    pub fn contains(&self, slot: u32) -> bool {
        self.pos[slot as usize] != NOT_IN_HEAP
    }

    /// Current key of an enqueued slot.
    pub fn key(&self, slot: u32) -> (u64, u32) {
        debug_assert!(self.contains(slot));
        self.heap[self.pos[slot as usize] as usize].key
    }

    /// Enqueues `slot` with `key`. The slot must not be enqueued already.
    pub fn push(&mut self, slot: u32, key: (u64, u32)) {
        debug_assert!(!self.contains(slot));
        let i = self.heap.len();
        self.heap.push(Entry { key, slot });
        self.sift_up(i);
    }

    /// Lowers an enqueued slot's key (equal keys are a no-op sift).
    pub fn decrease(&mut self, slot: u32, key: (u64, u32)) {
        let i = self.pos[slot as usize];
        debug_assert_ne!(i, NOT_IN_HEAP);
        debug_assert!(key <= self.heap[i as usize].key);
        self.heap[i as usize].key = key;
        self.sift_up(i as usize);
    }

    /// [`push`](Self::push) if absent, [`decrease`](Self::decrease) if
    /// enqueued — the one-call relaxation helper.
    pub fn push_or_decrease(&mut self, slot: u32, key: (u64, u32)) {
        if self.contains(slot) {
            self.decrease(slot, key);
        } else {
            self.push(slot, key);
        }
    }

    /// Removes and returns the minimum-key slot.
    pub fn pop(&mut self) -> Option<u32> {
        let top = self.heap.first()?.slot;
        self.pos[top as usize] = NOT_IN_HEAP;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            // Re-insert the detached last entry at the vacated root.
            self.heap[0] = last;
            self.sift_down(0);
        }
        Some(top)
    }

    /// Hole-based sift: the entry at `i` bubbles toward the root, moving
    /// smaller ancestors down one write each (no swaps).
    fn sift_up(&mut self, mut i: usize) {
        let entry = self.heap[i];
        while i > 0 {
            let up = (i - 1) / 2;
            if self.heap[up].key <= entry.key {
                break;
            }
            self.heap[i] = self.heap[up];
            self.pos[self.heap[i].slot as usize] = i as u32;
            i = up;
        }
        self.heap[i] = entry;
        self.pos[entry.slot as usize] = i as u32;
    }

    /// Hole-based sift toward the leaves.
    fn sift_down(&mut self, mut i: usize) {
        let entry = self.heap[i];
        let n = self.heap.len();
        loop {
            let l = 2 * i + 1;
            if l >= n {
                break;
            }
            let r = l + 1;
            let c = if r < n && self.heap[r].key < self.heap[l].key {
                r
            } else {
                l
            };
            if entry.key <= self.heap[c].key {
                break;
            }
            self.heap[i] = self.heap[c];
            self.pos[self.heap[i].slot as usize] = i as u32;
            i = c;
        }
        self.heap[i] = entry;
        self.pos[entry.slot as usize] = i as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_key_order() {
        let mut h = IndexedMinHeap::new();
        h.reset(8);
        for (slot, key) in [(3u32, 30u64), (1, 10), (7, 70), (5, 50)] {
            h.push(slot, (key, slot));
        }
        assert_eq!(h.len(), 4);
        let order: Vec<u32> = std::iter::from_fn(|| h.pop()).collect();
        assert_eq!(order, vec![1, 3, 5, 7]);
        assert!(h.is_empty());
    }

    #[test]
    fn ties_break_on_secondary_key() {
        let mut h = IndexedMinHeap::new();
        h.reset(4);
        // Same primary; secondary keys deliberately disagree with slot order.
        h.push(0, (5, 90));
        h.push(1, (5, 10));
        h.push(2, (5, 50));
        assert_eq!(h.pop(), Some(1));
        assert_eq!(h.pop(), Some(2));
        assert_eq!(h.pop(), Some(0));
    }

    #[test]
    fn decrease_reorders() {
        let mut h = IndexedMinHeap::new();
        h.reset(4);
        h.push(0, (10, 0));
        h.push(1, (20, 1));
        h.push(2, (30, 2));
        h.decrease(2, (5, 2));
        assert_eq!(h.pop(), Some(2));
        // equal-key decrease is a legal no-op
        h.decrease(1, (20, 1));
        assert_eq!(h.pop(), Some(0));
        assert_eq!(h.pop(), Some(1));
    }

    #[test]
    fn reset_after_partial_drain_is_clean() {
        let mut h = IndexedMinHeap::new();
        h.reset(6);
        for s in 0..6u32 {
            h.push(s, (u64::from(s), s));
        }
        assert_eq!(h.pop(), Some(0));
        // 5 entries remain; reset must drop them all.
        h.reset(6);
        assert!(h.is_empty());
        for s in 0..6u32 {
            assert!(!h.contains(s), "slot {s} leaked across reset");
        }
        h.push(4, (1, 4));
        assert_eq!(h.pop(), Some(4));
    }

    #[test]
    fn ensure_grows_without_disturbing() {
        let mut h = IndexedMinHeap::new();
        h.reset(2);
        h.push(0, (7, 0));
        h.ensure(10);
        h.push(9, (3, 9));
        assert_eq!(h.pop(), Some(9));
        assert_eq!(h.pop(), Some(0));
    }

    #[test]
    fn matches_std_binary_heap_on_random_sequences() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        // xorshift-driven differential test against a lazy-deletion heap.
        let mut state = 0x9e37_79b9_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let n = 2 + (next() % 60) as usize;
            let mut h = IndexedMinHeap::new();
            h.reset(n);
            let mut lazy: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
            let mut best = vec![u64::MAX; n];
            // random pushes/decreases
            for _ in 0..(next() % 200) {
                let slot = (next() % n as u64) as u32;
                let key = next() % 1000;
                if key < best[slot as usize] {
                    best[slot as usize] = key;
                    h.push_or_decrease(slot, (key, slot));
                    lazy.push(Reverse((key, slot)));
                }
            }
            // pop both to exhaustion; lazy heap skips stale entries
            let mut popped = vec![false; n];
            loop {
                let got = h.pop();
                let want = loop {
                    match lazy.pop() {
                        Some(Reverse((k, s))) => {
                            if !popped[s as usize] && best[s as usize] == k {
                                popped[s as usize] = true;
                                break Some(s);
                            }
                        }
                        None => break None,
                    }
                };
                assert_eq!(got, want);
                if got.is_none() {
                    break;
                }
            }
        }
    }
}
