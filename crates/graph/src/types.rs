//! Primitive identifiers and geometry shared across the workspace.

/// Node identifier (index into the network's node arrays).
pub type NodeId = u32;

/// Edge identifier (index into the CSR arc arrays). Each *directed* arc has
/// its own id; an undirected road segment is stored as two arcs.
pub type EdgeId = u32;

/// Edge weight — positive traversal cost (length, travel time, ...). The
/// paper requires `w(e) > 0` for every edge.
pub type Weight = u32;

/// Accumulated path cost. 64-bit so that summing billions of `u32` weights
/// cannot overflow.
pub type Dist = u64;

/// A point in the Euclidean plane. The paper assumes all nodes have Euclidean
/// coordinates (§3.1); clients express sources and destinations in these
/// coordinates because node/region identifiers are not known to them
/// (§5.1, footnote 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Point {
    /// X coordinate (integral — e.g. scaled meters).
    pub x: i32,
    /// Y coordinate.
    pub y: i32,
}

impl Point {
    /// Constructs a point.
    pub const fn new(x: i32, y: i32) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn dist(&self, other: &Point) -> f64 {
        let dx = f64::from(self.x) - f64::from(other.x);
        let dy = f64::from(self.y) - f64::from(other.y);
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared Euclidean distance (no sqrt; exact in i128).
    pub fn dist2(&self, other: &Point) -> i128 {
        let dx = i128::from(self.x) - i128::from(other.x);
        let dy = i128::from(self.y) - i128::from(other.y);
        dx * dx + dy * dy
    }

    /// Coordinate along `axis` (0 = x, 1 = y).
    pub fn coord(&self, axis: u8) -> i32 {
        match axis {
            0 => self.x,
            1 => self.y,
            _ => panic!("axis must be 0 or 1, got {axis}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0, 0);
        let b = Point::new(3, 4);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist2(&b), 25);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(-5, 10);
        let b = Point::new(7, -2);
        assert_eq!(a.dist(&b), b.dist(&a));
        assert_eq!(a.dist2(&b), b.dist2(&a));
    }

    #[test]
    fn dist2_handles_extremes_without_overflow() {
        let a = Point::new(i32::MIN, i32::MIN);
        let b = Point::new(i32::MAX, i32::MAX);
        let d = a.dist2(&b);
        assert!(d > 0);
    }

    #[test]
    fn coord_selects_axis() {
        let p = Point::new(3, 9);
        assert_eq!(p.coord(0), 3);
        assert_eq!(p.coord(1), 9);
    }

    #[test]
    #[should_panic(expected = "axis must be 0 or 1")]
    fn coord_rejects_bad_axis() {
        Point::new(0, 0).coord(2);
    }
}
