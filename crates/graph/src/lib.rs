//! Road-network substrate for privpath.
//!
//! The paper models a road network as a weighted graph `G = (V, E)` with
//! directed edges, positive weights, and Euclidean node coordinates (§3.1).
//! This crate provides:
//!
//! * [`network`] — the compressed-sparse-row [`network::RoadNetwork`] and its
//!   builder;
//! * [`dijkstra`] / [`astar`] — shortest-path algorithms with deterministic
//!   tie-breaking (canonical shortest-path trees drive the pre-computation of
//!   §5.2);
//! * [`path`] — path extraction and verification;
//! * [`gen`] — synthetic road-network generators reproducing the spatial
//!   sparsity of the paper's six datasets (Table 1);
//! * [`heap`] — the indexed binary-heap kernel (decrease-key, reusable
//!   buffers) shared by every Dijkstra in the system, offline and online;
//! * [`io`] — parsers for DIMACS `.gr`/`.co` and a simple node/edge text
//!   format so the original datasets drop in when available;
//! * [`landmark`] — Landmark (ALT) pre-computation used by the LM baseline;
//! * [`arcflag`] — Arc-flag pre-computation used by the AF baseline;
//! * [`bitset`] — fixed-width bitsets shared by arc flags and the region-set
//!   pre-computation.

pub mod arcflag;
pub mod astar;
pub mod bitset;
pub mod dijkstra;
pub mod gen;
pub mod heap;
pub mod io;
pub mod landmark;
pub mod network;
pub mod path;
pub mod types;

pub use bitset::FixedBitset;
pub use dijkstra::{dijkstra, dijkstra_to_target, SpTree, INFINITY};
pub use heap::IndexedMinHeap;
pub use network::{NetworkBuilder, RoadNetwork};
pub use path::Path;
pub use types::{Dist, EdgeId, NodeId, Point, Weight};
