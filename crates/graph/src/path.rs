//! Paths: the answer format of a shortest-path query.

use crate::dijkstra::SpTree;
use crate::network::RoadNetwork;
use crate::types::{Dist, EdgeId, NodeId};

/// A path through the network together with its total cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// Visited nodes, source first.
    pub nodes: Vec<NodeId>,
    /// Traversed edges (`nodes.len() - 1` of them, possibly empty).
    pub edges: Vec<EdgeId>,
    /// Total cost.
    pub cost: Dist,
}

impl Path {
    /// Extracts the canonical path to `t` from a shortest-path tree.
    pub fn from_tree(tree: &SpTree, t: NodeId) -> Option<Path> {
        let nodes = tree.path_nodes(t)?;
        let edges = tree.path_edges(t)?;
        Some(Path {
            nodes,
            edges,
            cost: tree.dist[t as usize],
        })
    }

    /// Number of hops (edges).
    pub fn hops(&self) -> usize {
        self.edges.len()
    }

    /// Validates the path against a network: endpoints chain correctly and
    /// the summed edge weights equal `cost`.
    pub fn verify(&self, net: &RoadNetwork) -> bool {
        if self.nodes.is_empty() || self.nodes.len() != self.edges.len() + 1 {
            return false;
        }
        let mut total: Dist = 0;
        for (i, &e) in self.edges.iter().enumerate() {
            let (t, h) = net.edge_endpoints(e);
            if t != self.nodes[i] || h != self.nodes[i + 1] {
                return false;
            }
            total += Dist::from(net.edge_weight(e));
        }
        total == self.cost
    }

    /// Serialized size of the result in bytes (one u32 node id per node plus
    /// the u64 cost) — used by the communication cost model for the OBF
    /// baseline, which ships `|S|·|T|` whole paths back to the client.
    pub fn wire_bytes(&self) -> usize {
        8 + 4 * self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use crate::network::NetworkBuilder;
    use crate::types::Point;

    fn chain() -> RoadNetwork {
        let mut b = NetworkBuilder::new();
        for i in 0..5 {
            b.add_node(Point::new(i, 0));
        }
        for i in 0..4u32 {
            b.add_undirected(i, i + 1, i + 1);
        }
        b.build()
    }

    #[test]
    fn from_tree_round_trip() {
        let g = chain();
        let t = dijkstra(&g, 0);
        let p = Path::from_tree(&t, 4).unwrap();
        assert_eq!(p.nodes, vec![0, 1, 2, 3, 4]);
        assert_eq!(p.cost, 1 + 2 + 3 + 4);
        assert_eq!(p.hops(), 4);
        assert!(p.verify(&g));
    }

    #[test]
    fn verify_rejects_wrong_cost() {
        let g = chain();
        let t = dijkstra(&g, 0);
        let mut p = Path::from_tree(&t, 2).unwrap();
        p.cost += 1;
        assert!(!p.verify(&g));
    }

    #[test]
    fn verify_rejects_broken_chain() {
        let g = chain();
        let t = dijkstra(&g, 0);
        let mut p = Path::from_tree(&t, 3).unwrap();
        p.nodes.swap(1, 2);
        assert!(!p.verify(&g));
    }

    #[test]
    fn trivial_path() {
        let g = chain();
        let t = dijkstra(&g, 2);
        let p = Path::from_tree(&t, 2).unwrap();
        assert_eq!(p.nodes, vec![2]);
        assert_eq!(p.hops(), 0);
        assert_eq!(p.cost, 0);
        assert!(p.verify(&g));
        assert_eq!(p.wire_bytes(), 12);
    }
}
