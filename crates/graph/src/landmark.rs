//! Landmark (ALT) pre-computation — the substrate of the LM baseline (§4).
//!
//! Landmark [13] "chooses a number of anchor nodes in G and pre-computes for
//! each v ∈ V the shortest path costs (from v) to the anchors. The vector of
//! costs, called Landmark vector, is kept with v and helps compute estimates
//! for the cost of SP(v, t)". The estimates feed an A* search.

use crate::astar::Heuristic;
use crate::dijkstra::{dijkstra, INFINITY};
use crate::network::RoadNetwork;
use crate::types::{Dist, NodeId};

/// Pre-computed landmark distance vectors.
#[derive(Debug, Clone)]
pub struct Landmarks {
    /// Chosen anchor nodes.
    pub anchors: Vec<NodeId>,
    /// `to_anchor[v][a]` — distance from `v` to `anchors[a]`.
    pub to_anchor: Vec<Vec<Dist>>,
    /// `from_anchor[v][a]` — distance from `anchors[a]` to `v`.
    pub from_anchor: Vec<Vec<Dist>>,
}

impl Landmarks {
    /// Selects `k` anchors by the farthest-point heuristic (first anchor =
    /// node farthest from the spatial median, each further anchor maximizes
    /// the minimum network distance to those already chosen) and computes all
    /// distance vectors.
    pub fn build(net: &RoadNetwork, k: usize) -> Landmarks {
        assert!(k >= 1, "need at least one landmark");
        let n = net.num_nodes();
        assert!(n > 0);
        let (rev, _) = net.reversed();

        let mut anchors: Vec<NodeId> = Vec::with_capacity(k);
        // Seed: node 0's farthest reachable node tends to sit on the border.
        let seed_tree = dijkstra(net, 0);
        let first = (0..n as u32)
            .filter(|&u| seed_tree.reached(u))
            .max_by_key(|&u| seed_tree.dist[u as usize])
            .unwrap_or(0);
        anchors.push(first);

        let mut to_anchor = vec![Vec::with_capacity(k); n];
        let mut from_anchor = vec![Vec::with_capacity(k); n];
        let mut min_dist = vec![Dist::MAX; n];

        for ai in 0..k {
            let a = anchors[ai];
            // distances from anchor (forward tree) and to anchor (reverse tree)
            let fwd = dijkstra(net, a);
            let bwd = dijkstra(&rev, a);
            for u in 0..n {
                from_anchor[u].push(fwd.dist[u]);
                to_anchor[u].push(bwd.dist[u]);
                let d = fwd.dist[u];
                if d != INFINITY {
                    min_dist[u] = min_dist[u].min(d);
                }
            }
            if ai + 1 < k {
                let next = (0..n as u32)
                    .filter(|&u| !anchors.contains(&u) && min_dist[u as usize] != Dist::MAX)
                    .max_by_key(|&u| min_dist[u as usize]);
                match next {
                    Some(u) => anchors.push(u),
                    None => break, // tiny graphs: fewer anchors than requested
                }
            }
        }

        // Trim vectors if we stopped early.
        let k = anchors.len();
        for v in to_anchor.iter_mut().chain(from_anchor.iter_mut()) {
            v.truncate(k);
        }
        Landmarks {
            anchors,
            to_anchor,
            from_anchor,
        }
    }

    /// Number of landmarks.
    pub fn len(&self) -> usize {
        self.anchors.len()
    }

    /// True if no landmarks were selected (empty network).
    pub fn is_empty(&self) -> bool {
        self.anchors.is_empty()
    }

    /// ALT lower bound on `dist(u, t)` using the triangle inequality in both
    /// directions:
    /// `d(u,t) >= max_a max( d(u,a) - d(t,a), d(a,t) - d(a,u) )`.
    pub fn lower_bound(&self, u: NodeId, t: NodeId) -> Dist {
        let mut best: Dist = 0;
        let (tu, ta) = (&self.to_anchor[u as usize], &self.to_anchor[t as usize]);
        let (fu, ft) = (&self.from_anchor[u as usize], &self.from_anchor[t as usize]);
        for a in 0..self.len() {
            if tu[a] != INFINITY && ta[a] != INFINITY {
                best = best.max(tu[a].saturating_sub(ta[a]));
            }
            if fu[a] != INFINITY && ft[a] != INFINITY {
                best = best.max(ft[a].saturating_sub(fu[a]));
            }
        }
        best
    }

    /// Serialized size in bytes of one node's landmark vector in the LM
    /// region-data file (`to_anchor` only, 4 bytes per entry, matching the
    /// paper's "vector of costs ... kept with v").
    pub fn vector_bytes(&self) -> usize {
        4 * self.len()
    }
}

/// A* heuristic backed by landmark vectors.
pub struct LandmarkHeuristic<'a> {
    lm: &'a Landmarks,
    target: NodeId,
}

impl<'a> LandmarkHeuristic<'a> {
    /// Heuristic toward `target`.
    pub fn new(lm: &'a Landmarks, target: NodeId) -> Self {
        LandmarkHeuristic { lm, target }
    }
}

impl Heuristic for LandmarkHeuristic<'_> {
    fn estimate(&self, u: NodeId) -> Dist {
        self.lm.lower_bound(u, self.target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astar::astar;
    use crate::dijkstra::distance;
    use crate::gen::{grid_network, GridGenConfig};

    #[test]
    fn lower_bound_is_admissible() {
        let net = grid_network(&GridGenConfig {
            nx: 8,
            ny: 8,
            ..Default::default()
        });
        let lm = Landmarks::build(&net, 4);
        assert_eq!(lm.len(), 4);
        for s in (0..64u32).step_by(7) {
            for t in (0..64u32).step_by(11) {
                let d = distance(&net, s, t);
                assert!(lm.lower_bound(s, t) <= d, "bound exceeded for {s}->{t}");
            }
        }
    }

    #[test]
    fn bound_is_exact_at_anchor() {
        let net = grid_network(&GridGenConfig {
            nx: 6,
            ny: 6,
            ..Default::default()
        });
        let lm = Landmarks::build(&net, 3);
        let a = lm.anchors[0];
        for u in 0..36u32 {
            // d(u, a) >= to_anchor[u][0] trivially holds with equality.
            assert_eq!(lm.lower_bound(u, a), distance(&net, u, a));
        }
    }

    #[test]
    fn astar_with_landmarks_is_correct_and_focused() {
        let net = grid_network(&GridGenConfig {
            nx: 12,
            ny: 12,
            ..Default::default()
        });
        let lm = Landmarks::build(&net, 5);
        let (s, t) = (0u32, 143u32);
        let h = LandmarkHeuristic::new(&lm, t);
        let r = astar(&net, s, t, &h);
        assert_eq!(r.cost, distance(&net, s, t));
        let plain = astar(&net, s, t, &crate::astar::ZeroHeuristic);
        assert!(
            r.settled <= plain.settled,
            "ALT should not settle more nodes"
        );
    }

    #[test]
    fn anchors_are_distinct() {
        let net = grid_network(&GridGenConfig {
            nx: 10,
            ny: 10,
            ..Default::default()
        });
        let lm = Landmarks::build(&net, 8);
        let mut set = std::collections::HashSet::new();
        for &a in &lm.anchors {
            assert!(set.insert(a), "duplicate anchor {a}");
        }
    }

    #[test]
    fn more_landmarks_never_weaken_bounds() {
        let net = grid_network(&GridGenConfig {
            nx: 8,
            ny: 8,
            ..Default::default()
        });
        let lm2 = Landmarks::build(&net, 2);
        let lm6 = Landmarks::build(&net, 6);
        // The first two anchors coincide (same selection process), so bounds
        // with 6 anchors dominate bounds with 2.
        assert_eq!(lm2.anchors[..], lm6.anchors[..2]);
        for s in (0..64u32).step_by(5) {
            for t in (0..64u32).step_by(9) {
                assert!(lm6.lower_bound(s, t) >= lm2.lower_bound(s, t));
            }
        }
    }

    #[test]
    fn vector_bytes() {
        let net = grid_network(&GridGenConfig {
            nx: 4,
            ny: 4,
            ..Default::default()
        });
        let lm = Landmarks::build(&net, 3);
        assert_eq!(lm.vector_bytes(), 12);
    }
}
