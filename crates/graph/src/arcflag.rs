//! Arc-flag pre-computation — the substrate of the AF baseline (§4).
//!
//! Arc-flag [21] "requires partitioning the road network into regions. For
//! each edge e ∈ E, it keeps a bit-vector where every bit corresponds to a
//! region – the bit for a region is set to 1 only if there is a shortest path
//! from one endpoint of e to a node in that region that passes through e."
//! Queries then expand only edges whose bit for the *destination* region is
//! set.

use crate::bitset::FixedBitset;
use crate::dijkstra::{dijkstra, INFINITY};
use crate::network::RoadNetwork;
use crate::types::{Dist, EdgeId, NodeId};

/// Per-edge region bit-vectors.
#[derive(Debug, Clone)]
pub struct ArcFlags {
    regions: usize,
    words_per_edge: usize,
    /// Flattened: edge `e` owns words `[e*wpe, (e+1)*wpe)`.
    words: Vec<u64>,
}

impl ArcFlags {
    /// Number of regions (bits per edge).
    pub fn num_regions(&self) -> usize {
        self.regions
    }

    /// Words per edge in the flat array.
    pub fn words_per_edge(&self) -> usize {
        self.words_per_edge
    }

    /// True if edge `e` may lie on a shortest path into `region`.
    pub fn get(&self, e: EdgeId, region: usize) -> bool {
        assert!(region < self.regions);
        let base = e as usize * self.words_per_edge;
        self.words[base + region / 64] >> (region % 64) & 1 == 1
    }

    fn set(&mut self, e: EdgeId, region: usize) {
        let base = e as usize * self.words_per_edge;
        self.words[base + region / 64] |= 1 << (region % 64);
    }

    /// The flag vector of edge `e` as a [`FixedBitset`].
    pub fn edge_flags(&self, e: EdgeId) -> FixedBitset {
        let base = e as usize * self.words_per_edge;
        FixedBitset::from_words(
            self.words_per_edge * 64,
            self.words[base..base + self.words_per_edge].to_vec(),
        )
    }

    /// Serialized size of one edge's flag vector in bytes.
    pub fn flag_bytes(&self) -> usize {
        self.regions.div_ceil(8)
    }

    /// Fraction of set bits (diagnostic: sparser is better for pruning).
    pub fn density(&self) -> f64 {
        let ones: u64 = self.words.iter().map(|w| w.count_ones() as u64).sum();
        let total = self.words.len() as u64 * 64;
        ones as f64 / total as f64
    }

    /// Computes arc flags for `net` under the region assignment
    /// `region_of[node]` with `regions` regions.
    ///
    /// For every region `j`, a backward Dijkstra runs from each *boundary
    /// node* of `j` (a node of `j` with an incoming arc from outside); an arc
    /// `(u, v)` receives flag `j` when it is tight on some shortest path
    /// toward that boundary node (`d(u→b) = w(u,v) + d(v→b)`). Intra-region
    /// arcs always carry their own region's flag.
    pub fn compute(net: &RoadNetwork, region_of: &[u16], regions: usize) -> ArcFlags {
        assert_eq!(region_of.len(), net.num_nodes());
        let words_per_edge = regions.div_ceil(64).max(1);
        let mut flags = ArcFlags {
            regions,
            words_per_edge,
            words: vec![0; net.num_arcs() * words_per_edge],
        };

        // Intra-region arcs.
        for e in 0..net.num_arcs() as u32 {
            let (u, v) = net.edge_endpoints(e);
            let (ru, rv) = (region_of[u as usize], region_of[v as usize]);
            flags.set(e, rv as usize);
            if ru == rv {
                flags.set(e, ru as usize);
            }
        }

        // Boundary nodes per region.
        let (rev, rev_to_orig) = net.reversed();
        let mut boundary: Vec<Vec<NodeId>> = vec![Vec::new(); regions];
        for e in 0..net.num_arcs() as u32 {
            let (u, v) = net.edge_endpoints(e);
            if region_of[u as usize] != region_of[v as usize] {
                boundary[region_of[v as usize] as usize].push(v);
            }
        }
        for list in &mut boundary {
            list.sort_unstable();
            list.dedup();
        }

        for (j, nodes) in boundary.iter().enumerate() {
            for &b in nodes {
                // dist_to_b[x] = shortest distance x -> b in the original net.
                let tree = dijkstra(&rev, b);
                for re in 0..rev.num_arcs() as u32 {
                    // reverse arc re = (v, u) corresponds to original (u, v)
                    let (v, u) = rev.edge_endpoints(re);
                    let (dv, du) = (tree.dist[v as usize], tree.dist[u as usize]);
                    if du == INFINITY || dv == INFINITY {
                        continue;
                    }
                    if du == dv + Dist::from(rev.edge_weight(re)) {
                        flags.set(rev_to_orig[re as usize], j);
                    }
                }
            }
        }
        flags
    }
}

/// Runs an arc-flag-pruned Dijkstra from `s` to `t`: only arcs whose flag for
/// `t`'s region is set are relaxed. Returns the (optimal) cost and the number
/// of settled nodes, mirroring [`crate::astar::AStarResult`].
pub fn arcflag_query(
    net: &RoadNetwork,
    flags: &ArcFlags,
    region_of: &[u16],
    s: NodeId,
    t: NodeId,
) -> (Dist, usize) {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let goal_region = region_of[t as usize] as usize;
    let n = net.num_nodes();
    let mut dist = vec![INFINITY; n];
    let mut closed = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[s as usize] = 0;
    heap.push(Reverse((0 as Dist, s)));
    let mut settled = 0usize;
    while let Some(Reverse((d, u))) = heap.pop() {
        if closed[u as usize] {
            continue;
        }
        closed[u as usize] = true;
        settled += 1;
        if u == t {
            return (d, settled);
        }
        for (e, v, w) in net.arcs_from(u) {
            if !flags.get(e, goal_region) {
                continue;
            }
            let nd = d + Dist::from(w);
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    (INFINITY, settled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::distance;
    use crate::gen::{grid_network, GridGenConfig};

    /// 2x2 block partition of a grid network.
    fn quad_regions(net: &RoadNetwork) -> Vec<u16> {
        let (min, max) = net.bounding_box().unwrap();
        let midx = (i64::from(min.x) + i64::from(max.x)) / 2;
        let midy = (i64::from(min.y) + i64::from(max.y)) / 2;
        net.points()
            .iter()
            .map(|p| {
                let rx = u16::from(i64::from(p.x) > midx);
                let ry = u16::from(i64::from(p.y) > midy);
                ry * 2 + rx
            })
            .collect()
    }

    #[test]
    fn pruned_queries_stay_optimal() {
        let net = grid_network(&GridGenConfig {
            nx: 8,
            ny: 8,
            ..Default::default()
        });
        let regions = quad_regions(&net);
        let flags = ArcFlags::compute(&net, &regions, 4);
        for s in (0..64u32).step_by(5) {
            for t in (0..64u32).step_by(7) {
                let (cost, _) = arcflag_query(&net, &flags, &regions, s, t);
                assert_eq!(cost, distance(&net, s, t), "query {s}->{t}");
            }
        }
    }

    #[test]
    fn pruning_reduces_search() {
        let net = grid_network(&GridGenConfig {
            nx: 12,
            ny: 12,
            ..Default::default()
        });
        let regions = quad_regions(&net);
        let flags = ArcFlags::compute(&net, &regions, 4);
        let (_, settled_flagged) = arcflag_query(&net, &flags, &regions, 0, 143);
        // flags strictly prune vs. all-ones baseline
        let all = ArcFlags {
            regions: 4,
            words_per_edge: 1,
            words: vec![u64::MAX; net.num_arcs()],
        };
        let (_, settled_all) = arcflag_query(&net, &all, &regions, 0, 143);
        assert!(settled_flagged <= settled_all);
        assert!(flags.density() < 1.0);
    }

    #[test]
    fn intra_region_flags_set() {
        let net = grid_network(&GridGenConfig {
            nx: 6,
            ny: 6,
            ..Default::default()
        });
        let regions = quad_regions(&net);
        let flags = ArcFlags::compute(&net, &regions, 4);
        for e in 0..net.num_arcs() as u32 {
            let (u, v) = net.edge_endpoints(e);
            if regions[u as usize] == regions[v as usize] {
                assert!(flags.get(e, regions[u as usize] as usize));
            }
        }
    }

    #[test]
    fn flag_bytes_rounds_up() {
        let net = grid_network(&GridGenConfig {
            nx: 3,
            ny: 3,
            ..Default::default()
        });
        let regions = vec![0u16; net.num_nodes()];
        let flags = ArcFlags::compute(&net, &regions, 9);
        assert_eq!(flags.flag_bytes(), 2);
        assert_eq!(flags.num_regions(), 9);
    }

    #[test]
    fn edge_flags_round_trip() {
        let net = grid_network(&GridGenConfig {
            nx: 4,
            ny: 4,
            ..Default::default()
        });
        let regions = quad_regions(&net);
        let flags = ArcFlags::compute(&net, &regions, 4);
        for e in (0..net.num_arcs() as u32).step_by(3) {
            let bs = flags.edge_flags(e);
            for r in 0..4 {
                assert_eq!(bs.get(r), flags.get(e, r));
            }
        }
    }
}
