//! Dijkstra's algorithm with deterministic tie-breaking.
//!
//! The pre-computation of §5.2 runs one Dijkstra per border node and walks the
//! resulting shortest-path trees; determinism (given the CSR arc order) makes
//! database construction reproducible. Clients also run plain Dijkstra over
//! the retrieved subgraph (§5.4).

use crate::heap::IndexedMinHeap;
use crate::network::RoadNetwork;
use crate::types::{Dist, EdgeId, NodeId};

/// Unreachable distance marker.
pub const INFINITY: Dist = Dist::MAX;

/// Sentinel for "no parent".
pub const NO_PARENT: u32 = u32::MAX;

/// A shortest-path tree rooted at `source`.
#[derive(Debug, Clone)]
pub struct SpTree {
    /// The root.
    pub source: NodeId,
    /// `dist[u]` — cost of the shortest path from `source` to `u`
    /// ([`INFINITY`] if unreachable).
    pub dist: Vec<Dist>,
    /// `parent[u]` — predecessor of `u` on the canonical shortest path
    /// ([`NO_PARENT`] for the source and unreachable nodes).
    pub parent: Vec<NodeId>,
    /// `parent_edge[u]` — the arc `(parent[u], u)` used to reach `u`.
    pub parent_edge: Vec<EdgeId>,
    /// Nodes in the order they were settled (ascending distance) — a valid
    /// topological order of the tree, so iterating it *in reverse* visits
    /// children before parents (used by the bottom-up region-set sweep).
    pub settled: Vec<NodeId>,
}

impl SpTree {
    /// True if `u` was reached.
    pub fn reached(&self, u: NodeId) -> bool {
        self.dist[u as usize] != INFINITY
    }

    /// Walks the canonical path from the source to `t`, returning the node
    /// sequence, or `None` if `t` is unreachable.
    pub fn path_nodes(&self, t: NodeId) -> Option<Vec<NodeId>> {
        if !self.reached(t) {
            return None;
        }
        let mut nodes = vec![t];
        let mut cur = t;
        while self.parent[cur as usize] != NO_PARENT {
            cur = self.parent[cur as usize];
            nodes.push(cur);
        }
        nodes.reverse();
        debug_assert_eq!(nodes[0], self.source);
        Some(nodes)
    }

    /// Walks the canonical path from the source to `t`, returning the edge
    /// sequence, or `None` if `t` is unreachable.
    pub fn path_edges(&self, t: NodeId) -> Option<Vec<EdgeId>> {
        if !self.reached(t) {
            return None;
        }
        let mut edges = Vec::new();
        let mut cur = t;
        while self.parent[cur as usize] != NO_PARENT {
            edges.push(self.parent_edge[cur as usize]);
            cur = self.parent[cur as usize];
        }
        edges.reverse();
        Some(edges)
    }
}

/// Runs Dijkstra from `source` to all nodes.
pub fn dijkstra(net: &RoadNetwork, source: NodeId) -> SpTree {
    dijkstra_impl(net, source, None)
}

/// Runs Dijkstra from `source`, stopping as soon as `target` is settled.
/// Distances of unsettled nodes are whatever the partial run produced; only
/// `target`'s entries (and those of already-settled nodes) are final.
pub fn dijkstra_to_target(net: &RoadNetwork, source: NodeId, target: NodeId) -> SpTree {
    dijkstra_impl(net, source, Some(target))
}

fn dijkstra_impl(net: &RoadNetwork, source: NodeId, target: Option<NodeId>) -> SpTree {
    let n = net.num_nodes();
    let mut dist = vec![INFINITY; n];
    let mut parent = vec![NO_PARENT; n];
    let mut parent_edge = vec![NO_PARENT; n];
    let mut settled = Vec::new();
    // Keys are `(dist, node)`: the node-id tie-break makes pop order — and
    // hence the canonical tree — independent of heap internals. Decrease-key
    // means a popped node's distance is final: settle order equals pop order
    // with no staleness filtering.
    let mut heap = IndexedMinHeap::new();
    heap.reset(n);

    dist[source as usize] = 0;
    heap.push(source, (0, source));

    while let Some(u) = heap.pop() {
        let d = dist[u as usize];
        settled.push(u);
        if target == Some(u) {
            break;
        }
        for (e, v, w) in net.arcs_from(u) {
            let nd = d + Dist::from(w);
            let dv = &mut dist[v as usize];
            if nd < *dv || (nd == *dv && parent[v as usize] != NO_PARENT && u < parent[v as usize])
            {
                // Strictly better, or an equal-cost path from a smaller-id
                // predecessor: the latter keeps the canonical tree unique
                // regardless of arc insertion order.
                // A tie can only be observed before `v` settles (weights are
                // >= 1), so the relaxation never resurrects a settled node —
                // its heap key only changes while it is still enqueued.
                *dv = nd;
                parent[v as usize] = u;
                parent_edge[v as usize] = e;
                heap.push_or_decrease(v, (nd, v));
            }
        }
    }

    SpTree {
        source,
        dist,
        parent,
        parent_edge,
        settled,
    }
}

/// One-to-many distances: runs a full Dijkstra and extracts `targets`.
pub fn distances_to(net: &RoadNetwork, source: NodeId, targets: &[NodeId]) -> Vec<Dist> {
    let tree = dijkstra(net, source);
    targets.iter().map(|&t| tree.dist[t as usize]).collect()
}

/// Point-to-point distance, or [`INFINITY`] if unreachable.
pub fn distance(net: &RoadNetwork, s: NodeId, t: NodeId) -> Dist {
    if s == t {
        return 0;
    }
    dijkstra_to_target(net, s, t).dist[t as usize]
}

/// Weight-respecting relaxation check: verifies that `tree` is a valid
/// shortest-path tree for `net` (every arc satisfies the triangle inequality
/// and every parent edge is tight). Used by property tests.
pub fn verify_sp_tree(net: &RoadNetwork, tree: &SpTree) -> bool {
    for u in 0..net.num_nodes() as u32 {
        let du = tree.dist[u as usize];
        if du == INFINITY {
            continue;
        }
        for (_, v, w) in net.arcs_from(u) {
            let dv = tree.dist[v as usize];
            if dv == INFINITY || dv > du + Dist::from(w) {
                return false;
            }
        }
        if u != tree.source {
            let p = tree.parent[u as usize];
            if p == NO_PARENT {
                return false;
            }
            let e = tree.parent_edge[u as usize];
            let (t, h) = net.edge_endpoints(e);
            if t != p || h != u {
                return false;
            }
            if tree.dist[p as usize] + Dist::from(net.edge_weight(e)) != du {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;
    use crate::types::Point;

    fn grid3() -> RoadNetwork {
        // 3x3 grid, unit weights, undirected.
        let mut b = NetworkBuilder::new();
        for y in 0..3 {
            for x in 0..3 {
                b.add_node(Point::new(x, y));
            }
        }
        let id = |x: i32, y: i32| (y * 3 + x) as u32;
        for y in 0..3 {
            for x in 0..3 {
                if x + 1 < 3 {
                    b.add_undirected(id(x, y), id(x + 1, y), 1);
                }
                if y + 1 < 3 {
                    b.add_undirected(id(x, y), id(x, y + 1), 1);
                }
            }
        }
        b.build()
    }

    #[test]
    fn distances_on_grid() {
        let g = grid3();
        let t = dijkstra(&g, 0);
        // Manhattan distances on the unit grid.
        for y in 0..3i32 {
            for x in 0..3i32 {
                assert_eq!(t.dist[(y * 3 + x) as usize], (x + y) as Dist);
            }
        }
        assert!(verify_sp_tree(&g, &t));
    }

    #[test]
    fn settled_order_is_ascending() {
        let g = grid3();
        let t = dijkstra(&g, 4);
        let mut last = 0;
        for &u in &t.settled {
            assert!(t.dist[u as usize] >= last);
            last = t.dist[u as usize];
        }
        assert_eq!(t.settled.len(), 9);
    }

    #[test]
    fn path_extraction() {
        let g = grid3();
        let t = dijkstra(&g, 0);
        let nodes = t.path_nodes(8).unwrap();
        assert_eq!(nodes.first(), Some(&0));
        assert_eq!(nodes.last(), Some(&8));
        assert_eq!(nodes.len(), 5); // 4 hops
        let edges = t.path_edges(8).unwrap();
        assert_eq!(edges.len(), 4);
        let cost: Dist = edges.iter().map(|&e| Dist::from(g.edge_weight(e))).sum();
        assert_eq!(cost, t.dist[8]);
    }

    #[test]
    fn early_exit_settles_target() {
        let g = grid3();
        let t = dijkstra_to_target(&g, 0, 4);
        assert_eq!(t.dist[4], 2);
        // target settled last
        assert_eq!(*t.settled.last().unwrap(), 4);
    }

    #[test]
    fn unreachable_reported() {
        let mut b = NetworkBuilder::new();
        b.add_node(Point::new(0, 0));
        b.add_node(Point::new(1, 0));
        b.add_node(Point::new(2, 0));
        b.add_arc(0, 1, 1);
        let g = b.build();
        let t = dijkstra(&g, 0);
        assert!(!t.reached(2));
        assert!(t.path_nodes(2).is_none());
        assert!(t.path_edges(2).is_none());
        assert_eq!(distance(&g, 0, 2), INFINITY);
    }

    #[test]
    fn directed_asymmetry() {
        let mut b = NetworkBuilder::new();
        b.add_node(Point::new(0, 0));
        b.add_node(Point::new(1, 0));
        b.add_arc(0, 1, 7);
        let g = b.build();
        assert_eq!(distance(&g, 0, 1), 7);
        assert_eq!(distance(&g, 1, 0), INFINITY);
        assert_eq!(distance(&g, 0, 0), 0);
    }

    #[test]
    fn ties_break_canonically() {
        // Two equal-cost paths 0->1->3 and 0->2->3; the canonical tree must
        // pick parent 1 (smaller predecessor id) for node 3.
        let mut b = NetworkBuilder::new();
        for i in 0..4 {
            b.add_node(Point::new(i, 0));
        }
        b.add_arc(0, 2, 1);
        b.add_arc(2, 3, 1);
        b.add_arc(0, 1, 1);
        b.add_arc(1, 3, 1);
        let g = b.build();
        let t = dijkstra(&g, 0);
        assert_eq!(t.dist[3], 2);
        assert_eq!(t.parent[3], 1);
    }

    #[test]
    fn one_to_many() {
        let g = grid3();
        let d = distances_to(&g, 0, &[0, 4, 8]);
        assert_eq!(d, vec![0, 2, 4]);
    }
}
