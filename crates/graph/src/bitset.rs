//! Fixed-width bitsets.
//!
//! Used for (a) arc-flag vectors (one bit per region per edge, §4) and
//! (b) the destination-region sets propagated up shortest-path trees during
//! the S_ij / G_ij pre-computation (§5.2).

/// A fixed-capacity bitset backed by `u64` words.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FixedBitset {
    bits: usize,
    words: Vec<u64>,
}

impl FixedBitset {
    /// An all-zero bitset with capacity `bits`.
    pub fn new(bits: usize) -> Self {
        FixedBitset {
            bits,
            words: vec![0; bits.div_ceil(64)],
        }
    }

    /// Capacity in bits.
    pub fn capacity(&self) -> usize {
        self.bits
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= capacity`.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.bits, "bit {i} out of range {}", self.bits);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    pub fn unset(&mut self, i: usize) {
        assert!(i < self.bits, "bit {i} out of range {}", self.bits);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Reads bit `i`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.bits, "bit {i} out of range {}", self.bits);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Sets every bit of `other` in `self` (`self |= other`).
    ///
    /// # Panics
    /// Panics on capacity mismatch.
    pub fn union_with(&mut self, other: &FixedBitset) {
        assert_eq!(self.bits, other.bits, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// True if `self` and `other` share a set bit.
    pub fn intersects(&self, other: &FixedBitset) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Clears all bits (keeps capacity).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Iterates the indices of set bits in ascending order.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut rem = w;
            std::iter::from_fn(move || {
                if rem == 0 {
                    return None;
                }
                let tz = rem.trailing_zeros() as usize;
                rem &= rem - 1;
                Some(wi * 64 + tz)
            })
        })
    }

    /// Raw word storage (for flat-packed per-edge flag arrays).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a bitset from raw words.
    pub fn from_words(bits: usize, words: Vec<u64>) -> Self {
        assert_eq!(words.len(), bits.div_ceil(64));
        FixedBitset { bits, words }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn set_get_unset() {
        let mut b = FixedBitset::new(130);
        assert!(!b.get(0));
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert_eq!(b.count_ones(), 3);
        b.unset(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn ones_iterates_in_order() {
        let mut b = FixedBitset::new(200);
        for i in [3usize, 5, 63, 64, 65, 128, 199] {
            b.set(i);
        }
        let got: Vec<usize> = b.ones().collect();
        assert_eq!(got, vec![3, 5, 63, 64, 65, 128, 199]);
    }

    #[test]
    fn union_and_intersects() {
        let mut a = FixedBitset::new(100);
        let mut b = FixedBitset::new(100);
        a.set(1);
        b.set(99);
        assert!(!a.intersects(&b));
        a.union_with(&b);
        assert!(a.get(1) && a.get(99));
        assert!(a.intersects(&b));
    }

    #[test]
    fn clear_resets() {
        let mut a = FixedBitset::new(10);
        a.set(9);
        assert!(!a.is_empty());
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.capacity(), 10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut b = FixedBitset::new(8);
        b.set(8);
    }

    #[test]
    fn words_round_trip() {
        let mut a = FixedBitset::new(70);
        a.set(69);
        let b = FixedBitset::from_words(70, a.words().to_vec());
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn matches_reference_set(idx in proptest::collection::btree_set(0usize..500, 0..100)) {
            let mut b = FixedBitset::new(500);
            for &i in &idx { b.set(i); }
            prop_assert_eq!(b.count_ones(), idx.len());
            let got: Vec<usize> = b.ones().collect();
            let want: Vec<usize> = idx.iter().copied().collect();
            prop_assert_eq!(got, want);
        }

        #[test]
        fn union_is_set_union(
            xs in proptest::collection::btree_set(0usize..300, 0..50),
            ys in proptest::collection::btree_set(0usize..300, 0..50),
        ) {
            let mut a = FixedBitset::new(300);
            let mut b = FixedBitset::new(300);
            for &i in &xs { a.set(i); }
            for &i in &ys { b.set(i); }
            a.union_with(&b);
            let want: Vec<usize> = xs.union(&ys).copied().collect();
            let got: Vec<usize> = a.ones().collect();
            prop_assert_eq!(got, want);
        }
    }
}
