//! Parsers for common road-network interchange formats.
//!
//! The paper's datasets come from the Brinkhoff generator (Oldenburg) and the
//! Digital Chart of the World. When those files are available they can be
//! loaded here; otherwise [`crate::gen`] produces synthetic stand-ins.
//!
//! Two formats are supported:
//!
//! * **DIMACS** (9th DIMACS Implementation Challenge): a `.gr` arc file
//!   (`p sp <n> <m>` header, `a <u> <v> <w>` lines, 1-based ids) plus a `.co`
//!   coordinate file (`v <id> <x> <y>` lines).
//! * **Node/edge text** (Brinkhoff-style): a node file with
//!   `<id> <x> <y>` lines and an edge file with `<id> <u> <v> [<w>]` lines
//!   (weight defaults to the rounded Euclidean length); edges are undirected.

use crate::network::{NetworkBuilder, RoadNetwork};
use crate::types::Point;
use std::fmt;

/// Errors raised while parsing network files.
#[derive(Debug)]
pub enum ParseError {
    /// A line did not match the expected shape.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        msg: String,
    },
    /// The file referenced an unknown node id.
    UnknownNode(u64),
    /// Structural problem (missing header, inconsistent counts, ...).
    Structure(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadLine { line, msg } => write!(f, "line {line}: {msg}"),
            ParseError::UnknownNode(id) => write!(f, "reference to unknown node {id}"),
            ParseError::Structure(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ParseError {}

fn bad(line: usize, msg: impl Into<String>) -> ParseError {
    ParseError::BadLine {
        line,
        msg: msg.into(),
    }
}

/// Parses DIMACS `.gr` (arcs) + `.co` (coordinates) content.
///
/// Ids are 1-based in the files and shifted to 0-based node ids.
pub fn parse_dimacs(gr: &str, co: &str) -> Result<RoadNetwork, ParseError> {
    let mut n: Option<usize> = None;
    let mut arcs: Vec<(u32, u32, u32)> = Vec::new();
    for (i, raw) in gr.lines().enumerate() {
        let line = raw.trim();
        let lno = i + 1;
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut tok = line.split_whitespace();
        match tok.next() {
            Some("p") => {
                if tok.next() != Some("sp") {
                    return Err(bad(lno, "expected 'p sp <n> <m>'"));
                }
                let nn: usize = tok
                    .next()
                    .ok_or_else(|| bad(lno, "missing n"))?
                    .parse()
                    .map_err(|e| bad(lno, format!("bad n: {e}")))?;
                let _m: usize = tok
                    .next()
                    .ok_or_else(|| bad(lno, "missing m"))?
                    .parse()
                    .map_err(|e| bad(lno, format!("bad m: {e}")))?;
                n = Some(nn);
            }
            Some("a") => {
                let u: u64 = tok
                    .next()
                    .ok_or_else(|| bad(lno, "missing u"))?
                    .parse()
                    .map_err(|e| bad(lno, format!("bad u: {e}")))?;
                let v: u64 = tok
                    .next()
                    .ok_or_else(|| bad(lno, "missing v"))?
                    .parse()
                    .map_err(|e| bad(lno, format!("bad v: {e}")))?;
                let w: u64 = tok
                    .next()
                    .ok_or_else(|| bad(lno, "missing w"))?
                    .parse()
                    .map_err(|e| bad(lno, format!("bad w: {e}")))?;
                let nn = n
                    .ok_or_else(|| ParseError::Structure("arc before 'p sp' header".into()))?
                    as u64;
                if u == 0 || v == 0 || u > nn || v > nn {
                    return Err(ParseError::UnknownNode(if u == 0 || u > nn {
                        u
                    } else {
                        v
                    }));
                }
                arcs.push((
                    (u - 1) as u32,
                    (v - 1) as u32,
                    w.min(u64::from(u32::MAX)) as u32,
                ));
            }
            _ => return Err(bad(lno, format!("unknown record '{line}'"))),
        }
    }
    let n = n.ok_or_else(|| ParseError::Structure("missing 'p sp' header".into()))?;

    let mut coords = vec![None; n];
    for (i, raw) in co.lines().enumerate() {
        let line = raw.trim();
        let lno = i + 1;
        if line.is_empty() || line.starts_with('c') || line.starts_with('p') {
            continue;
        }
        let mut tok = line.split_whitespace();
        if tok.next() != Some("v") {
            return Err(bad(lno, format!("unknown record '{line}'")));
        }
        let id: u64 = tok
            .next()
            .ok_or_else(|| bad(lno, "missing id"))?
            .parse()
            .map_err(|e| bad(lno, format!("bad id: {e}")))?;
        let x: i64 = tok
            .next()
            .ok_or_else(|| bad(lno, "missing x"))?
            .parse()
            .map_err(|e| bad(lno, format!("bad x: {e}")))?;
        let y: i64 = tok
            .next()
            .ok_or_else(|| bad(lno, "missing y"))?
            .parse()
            .map_err(|e| bad(lno, format!("bad y: {e}")))?;
        if id == 0 || id > n as u64 {
            return Err(ParseError::UnknownNode(id));
        }
        coords[(id - 1) as usize] = Some(Point::new(x as i32, y as i32));
    }
    if coords.iter().any(|c| c.is_none()) {
        return Err(ParseError::Structure(
            "coordinate file does not cover all nodes".into(),
        ));
    }

    let mut b = NetworkBuilder::new();
    for c in coords {
        b.add_node(c.expect("checked above"));
    }
    for (u, v, w) in arcs {
        if u != v {
            b.add_arc(u, v, w);
        }
    }
    Ok(b.build())
}

/// Parses node/edge text files (`<id> <x> <y>` and `<id> <u> <v> [<w>]`).
/// Node ids may be arbitrary u64s; they are remapped densely in file order.
/// Edges are undirected.
pub fn parse_node_edge(nodes: &str, edges: &str) -> Result<RoadNetwork, ParseError> {
    let mut b = NetworkBuilder::new();
    let mut remap = std::collections::HashMap::new();
    let mut points = Vec::new();
    for (i, raw) in nodes.lines().enumerate() {
        let line = raw.trim();
        let lno = i + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let tok: Vec<&str> = line.split_whitespace().collect();
        if tok.len() < 3 {
            return Err(bad(lno, "expected '<id> <x> <y>'"));
        }
        let id: u64 = tok[0]
            .parse()
            .map_err(|e| bad(lno, format!("bad id: {e}")))?;
        let x: f64 = tok[1]
            .parse()
            .map_err(|e| bad(lno, format!("bad x: {e}")))?;
        let y: f64 = tok[2]
            .parse()
            .map_err(|e| bad(lno, format!("bad y: {e}")))?;
        let p = Point::new(x.round() as i32, y.round() as i32);
        let nid = b.add_node(p);
        points.push(p);
        if remap.insert(id, nid).is_some() {
            return Err(bad(lno, format!("duplicate node id {id}")));
        }
    }
    for (i, raw) in edges.lines().enumerate() {
        let line = raw.trim();
        let lno = i + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let tok: Vec<&str> = line.split_whitespace().collect();
        if tok.len() < 3 {
            return Err(bad(lno, "expected '<id> <u> <v> [<w>]'"));
        }
        let u: u64 = tok[1]
            .parse()
            .map_err(|e| bad(lno, format!("bad u: {e}")))?;
        let v: u64 = tok[2]
            .parse()
            .map_err(|e| bad(lno, format!("bad v: {e}")))?;
        let &ui = remap.get(&u).ok_or(ParseError::UnknownNode(u))?;
        let &vi = remap.get(&v).ok_or(ParseError::UnknownNode(v))?;
        if ui == vi {
            continue; // ignore degenerate self-loops in source data
        }
        let w = if tok.len() >= 4 {
            let wf: f64 = tok[3]
                .parse()
                .map_err(|e| bad(lno, format!("bad w: {e}")))?;
            wf.round().max(1.0) as u32
        } else {
            points[ui as usize]
                .dist(&points[vi as usize])
                .round()
                .max(1.0) as u32
        };
        b.add_undirected(ui, vi, w);
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::distance;

    const GR: &str = "c tiny\np sp 3 4\na 1 2 5\na 2 1 5\na 2 3 7\na 3 2 7\n";
    const CO: &str = "c coords\nv 1 0 0\nv 2 100 0\nv 3 200 0\n";

    #[test]
    fn dimacs_round_trip() {
        let net = parse_dimacs(GR, CO).unwrap();
        assert_eq!(net.num_nodes(), 3);
        assert_eq!(net.num_arcs(), 4);
        assert_eq!(distance(&net, 0, 2), 12);
        assert_eq!(net.node_point(2), Point::new(200, 0));
    }

    #[test]
    fn dimacs_missing_header() {
        assert!(matches!(
            parse_dimacs("a 1 2 3\n", ""),
            Err(ParseError::Structure(_))
        ));
    }

    #[test]
    fn dimacs_unknown_node() {
        let gr = "p sp 2 1\na 1 5 3\n";
        assert!(matches!(
            parse_dimacs(gr, "v 1 0 0\nv 2 1 1\n"),
            Err(ParseError::UnknownNode(5))
        ));
    }

    #[test]
    fn dimacs_incomplete_coords() {
        let gr = "p sp 2 1\na 1 2 3\n";
        assert!(matches!(
            parse_dimacs(gr, "v 1 0 0\n"),
            Err(ParseError::Structure(_))
        ));
    }

    #[test]
    fn node_edge_round_trip() {
        let nodes = "# comment\n10 0 0\n20 3 4\n30 6 8\n";
        let edges = "0 10 20\n1 20 30 9\n";
        let net = parse_node_edge(nodes, edges).unwrap();
        assert_eq!(net.num_nodes(), 3);
        // first edge weight = euclid(0,0 -> 3,4) = 5, second explicit 9
        assert_eq!(distance(&net, 0, 2), 14);
        assert_eq!(distance(&net, 2, 0), 14); // undirected
    }

    #[test]
    fn node_edge_duplicate_id() {
        let nodes = "1 0 0\n1 1 1\n";
        assert!(matches!(
            parse_node_edge(nodes, ""),
            Err(ParseError::BadLine { .. })
        ));
    }

    #[test]
    fn node_edge_unknown_reference() {
        let nodes = "1 0 0\n";
        let edges = "0 1 99\n";
        assert!(matches!(
            parse_node_edge(nodes, edges),
            Err(ParseError::UnknownNode(99))
        ));
    }

    #[test]
    fn node_edge_skips_self_loops() {
        let nodes = "1 0 0\n2 1 0\n";
        let edges = "0 1 1\n1 1 2\n";
        let net = parse_node_edge(nodes, edges).unwrap();
        assert_eq!(net.num_arcs(), 2);
    }
}
