//! A* search with pluggable admissible heuristics.
//!
//! The LM baseline (§4) runs A* guided by Landmark lower bounds; the plain
//! Euclidean heuristic is provided for unsecured reference runs. A* over the
//! *retrieved* pages is also what drives the multi-round page fetching of the
//! LM scheme, so the search here supports an "expansion gate" that reports
//! when it needs data the client has not fetched yet.

use crate::dijkstra::{INFINITY, NO_PARENT};
use crate::network::RoadNetwork;
use crate::types::{Dist, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Lower bound on the remaining cost from a node to the (fixed) target.
pub trait Heuristic {
    /// Admissible estimate `h(u) <= dist(u, t)`.
    fn estimate(&self, u: NodeId) -> Dist;
}

/// The zero heuristic — A* degenerates to Dijkstra.
pub struct ZeroHeuristic;

impl Heuristic for ZeroHeuristic {
    fn estimate(&self, _u: NodeId) -> Dist {
        0
    }
}

/// Euclidean-distance heuristic, admissible when weights are at least the
/// scaled Euclidean length of the edge.
pub struct EuclideanHeuristic<'a> {
    net: &'a RoadNetwork,
    target: NodeId,
    /// weight units per coordinate unit (<= the true ratio keeps it admissible)
    scale: f64,
}

impl<'a> EuclideanHeuristic<'a> {
    /// Creates a heuristic toward `target` with the given weight/coordinate
    /// scale factor.
    pub fn new(net: &'a RoadNetwork, target: NodeId, scale: f64) -> Self {
        EuclideanHeuristic { net, target, scale }
    }
}

impl Heuristic for EuclideanHeuristic<'_> {
    fn estimate(&self, u: NodeId) -> Dist {
        let d = self
            .net
            .node_point(u)
            .dist(&self.net.node_point(self.target));
        (d * self.scale).floor() as Dist
    }
}

/// Result of an A* run.
#[derive(Debug, Clone)]
pub struct AStarResult {
    /// Cost of the found path ([`INFINITY`] if the target is unreachable).
    pub cost: Dist,
    /// Node sequence of the found path (empty if unreachable).
    pub path: Vec<NodeId>,
    /// Number of nodes settled (search effort metric).
    pub settled: usize,
}

/// Runs A* from `s` to `t` with heuristic `h`. With an admissible heuristic
/// the returned cost is optimal.
pub fn astar<H: Heuristic>(net: &RoadNetwork, s: NodeId, t: NodeId, h: &H) -> AStarResult {
    let n = net.num_nodes();
    let mut dist = vec![INFINITY; n];
    let mut parent = vec![NO_PARENT; n];
    let mut closed = vec![false; n];
    let mut heap: BinaryHeap<Reverse<(Dist, Dist, NodeId)>> = BinaryHeap::new();
    let mut settled = 0usize;

    dist[s as usize] = 0;
    heap.push(Reverse((h.estimate(s), 0, s)));

    while let Some(Reverse((_f, d, u))) = heap.pop() {
        if closed[u as usize] || d > dist[u as usize] {
            continue;
        }
        closed[u as usize] = true;
        settled += 1;
        if u == t {
            let mut path = vec![t];
            let mut cur = t;
            while parent[cur as usize] != NO_PARENT {
                cur = parent[cur as usize];
                path.push(cur);
            }
            path.reverse();
            return AStarResult {
                cost: d,
                path,
                settled,
            };
        }
        for (_, v, w) in net.arcs_from(u) {
            let nd = d + Dist::from(w);
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                parent[v as usize] = u;
                heap.push(Reverse((nd + h.estimate(v), nd, v)));
            }
        }
    }

    AStarResult {
        cost: INFINITY,
        path: Vec::new(),
        settled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::distance;
    use crate::network::NetworkBuilder;
    use crate::types::Point;

    fn line(n: u32) -> RoadNetwork {
        let mut b = NetworkBuilder::new();
        for i in 0..n {
            b.add_node(Point::new(i as i32 * 10, 0));
        }
        for i in 0..n - 1 {
            b.add_undirected(i, i + 1, 10);
        }
        b.build()
    }

    #[test]
    fn astar_matches_dijkstra_on_line() {
        let g = line(20);
        let h = EuclideanHeuristic::new(&g, 19, 1.0);
        let r = astar(&g, 0, 19, &h);
        assert_eq!(r.cost, distance(&g, 0, 19));
        assert_eq!(r.path.len(), 20);
    }

    #[test]
    fn heuristic_prunes_search() {
        let g = line(50);
        let zero = astar(&g, 0, 25, &ZeroHeuristic);
        let euc = astar(&g, 0, 25, &EuclideanHeuristic::new(&g, 25, 1.0));
        assert_eq!(zero.cost, euc.cost);
        // With a perfect heuristic on a line, A* settles only the path prefix.
        assert!(euc.settled <= zero.settled);
        assert!(euc.settled <= 26);
    }

    #[test]
    fn unreachable_target() {
        let mut b = NetworkBuilder::new();
        b.add_node(Point::new(0, 0));
        b.add_node(Point::new(100, 0));
        let g = b.build();
        let r = astar(&g, 0, 1, &ZeroHeuristic);
        assert_eq!(r.cost, INFINITY);
        assert!(r.path.is_empty());
    }

    #[test]
    fn source_equals_target() {
        let g = line(3);
        let r = astar(&g, 1, 1, &ZeroHeuristic);
        assert_eq!(r.cost, 0);
        assert_eq!(r.path, vec![1]);
    }

    #[test]
    fn inadmissible_scale_would_overestimate_but_euclidean_is_safe() {
        // Weights exactly equal scaled Euclidean length: scale 1.0 stays
        // admissible and exact.
        let g = line(10);
        let h = EuclideanHeuristic::new(&g, 9, 1.0);
        assert_eq!(h.estimate(0), 90);
        assert_eq!(h.estimate(9), 0);
    }
}
