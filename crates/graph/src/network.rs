//! The road network: a directed, weighted, spatially-embedded graph in
//! compressed-sparse-row (CSR) form.

use crate::types::{EdgeId, NodeId, Point, Weight};

/// Directed, weighted road network with Euclidean node coordinates.
///
/// Arcs are stored in CSR order grouped by tail node; each arc has a stable
/// [`EdgeId`] equal to its CSR position, which the rest of the system uses to
/// reference edges (e.g. the PI subgraphs `G_ij` store original edge ids).
#[derive(Debug, Clone)]
pub struct RoadNetwork {
    points: Vec<Point>,
    /// CSR offsets: arcs of node `u` are `offsets[u]..offsets[u+1]`.
    offsets: Vec<u32>,
    heads: Vec<NodeId>,
    weights: Vec<Weight>,
    /// Tail node of each arc (same length as `heads`); kept explicit so
    /// `edge_endpoints` is O(1).
    tails: Vec<NodeId>,
}

impl RoadNetwork {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.points.len()
    }

    /// Number of directed arcs.
    pub fn num_arcs(&self) -> usize {
        self.heads.len()
    }

    /// Coordinates of node `u`.
    pub fn node_point(&self, u: NodeId) -> Point {
        self.points[u as usize]
    }

    /// All node coordinates.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Out-degree of node `u`.
    pub fn degree(&self, u: NodeId) -> usize {
        (self.offsets[u as usize + 1] - self.offsets[u as usize]) as usize
    }

    /// Iterates `(edge_id, head, weight)` for the arcs leaving `u`.
    pub fn arcs_from(&self, u: NodeId) -> impl Iterator<Item = (EdgeId, NodeId, Weight)> + '_ {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.offsets[u as usize + 1] as usize;
        (lo..hi).map(move |e| (e as EdgeId, self.heads[e], self.weights[e]))
    }

    /// Tail and head of arc `e`.
    pub fn edge_endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        (self.tails[e as usize], self.heads[e as usize])
    }

    /// Weight of arc `e`.
    pub fn edge_weight(&self, e: EdgeId) -> Weight {
        self.weights[e as usize]
    }

    /// Bounding box of all node coordinates (`(min, max)`), or `None` for an
    /// empty network.
    pub fn bounding_box(&self) -> Option<(Point, Point)> {
        let first = *self.points.first()?;
        let mut min = first;
        let mut max = first;
        for p in &self.points {
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
        }
        Some((min, max))
    }

    /// The reverse network: every arc `(u, v, w)` becomes `(v, u, w)`.
    /// Returns the reversed network together with a map from each reversed
    /// arc id to the original arc id (needed by arc-flag pre-computation).
    pub fn reversed(&self) -> (RoadNetwork, Vec<EdgeId>) {
        let n = self.num_nodes();
        let mut deg = vec![0u32; n + 1];
        for &h in &self.heads {
            deg[h as usize + 1] += 1;
        }
        for i in 0..n {
            deg[i + 1] += deg[i];
        }
        let offsets = deg.clone();
        let m = self.num_arcs();
        let mut heads = vec![0u32; m];
        let mut weights = vec![0u32; m];
        let mut tails = vec![0u32; m];
        let mut orig = vec![0u32; m];
        let mut cursor = offsets.clone();
        for e in 0..m {
            let (t, h) = (self.tails[e], self.heads[e]);
            let slot = cursor[h as usize] as usize;
            cursor[h as usize] += 1;
            heads[slot] = t;
            tails[slot] = h;
            weights[slot] = self.weights[e];
            orig[slot] = e as u32;
        }
        (
            RoadNetwork {
                points: self.points.clone(),
                offsets,
                heads,
                weights,
                tails,
            },
            orig,
        )
    }

    /// A copy of this network with every arc weight deterministically
    /// perturbed by up to ±20% — the "updated edge weights" a live traffic
    /// feed would deliver between database generations. Topology and
    /// coordinates are untouched, so the same `EdgeId`s and query points
    /// remain valid against the rebuilt database. The jitter is keyed on
    /// `seed` and the *unordered* endpoint pair: the two directions of an
    /// undirected road get the same factor, preserving symmetry.
    pub fn reweighted(&self, seed: u64) -> RoadNetwork {
        let mut weights = self.weights.clone();
        for (e, w_out) in weights.iter_mut().enumerate() {
            let (u, v) = self.edge_endpoints(e as EdgeId);
            let (a, b) = if u <= v { (u, v) } else { (v, u) };
            // splitmix-style hash of (seed, unordered endpoint pair)
            let mut h = seed ^ 0x9e37_79b9_7f4a_7c15;
            for x in [u64::from(a), u64::from(b)] {
                h = h.wrapping_add(x).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                h ^= h >> 27;
            }
            let pct = 80 + (h % 41); // 80..=120 percent of the old weight
            let w = u64::from(self.weights[e]);
            *w_out = (((w * pct + 50) / 100).max(1)).min(u64::from(Weight::MAX)) as Weight;
        }
        RoadNetwork {
            points: self.points.clone(),
            offsets: self.offsets.clone(),
            heads: self.heads.clone(),
            weights,
            tails: self.tails.clone(),
        }
    }

    /// Nearest node to `p` (linear scan; fine for query mapping in tests and
    /// examples — partitioning uses the KD header for the real lookup).
    pub fn nearest_node(&self, p: Point) -> Option<NodeId> {
        (0..self.num_nodes() as u32).min_by_key(|&u| self.points[u as usize].dist2(&p))
    }

    /// True if every node can reach every other node (checked via forward and
    /// backward BFS from node 0).
    pub fn is_strongly_connected(&self) -> bool {
        if self.num_nodes() == 0 {
            return true;
        }
        let full = |net: &RoadNetwork| {
            let mut seen = vec![false; net.num_nodes()];
            let mut stack = vec![0u32];
            seen[0] = true;
            let mut count = 1usize;
            while let Some(u) = stack.pop() {
                for (_, v, _) in net.arcs_from(u) {
                    if !seen[v as usize] {
                        seen[v as usize] = true;
                        count += 1;
                        stack.push(v);
                    }
                }
            }
            count == net.num_nodes()
        };
        full(self) && full(&self.reversed().0)
    }

    /// Serialized size of node `u`'s record in the region-data file `Fd`:
    /// `node_id (4) + x (4) + y (4) + degree (2) + degree × (head 4 + weight 4)`.
    /// This drives the packed KD-tree construction (§5.6), where `z` is the
    /// largest such record.
    pub fn node_record_bytes(&self, u: NodeId) -> usize {
        14 + 8 * self.degree(u)
    }

    /// The largest node record (`z` in §5.6).
    pub fn max_node_record_bytes(&self) -> usize {
        (0..self.num_nodes() as u32)
            .map(|u| self.node_record_bytes(u))
            .max()
            .unwrap_or(0)
    }
}

/// Incremental builder for [`RoadNetwork`].
#[derive(Debug, Default, Clone)]
pub struct NetworkBuilder {
    points: Vec<Point>,
    arcs: Vec<(NodeId, NodeId, Weight)>,
}

impl NetworkBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self, p: Point) -> NodeId {
        self.points.push(p);
        (self.points.len() - 1) as NodeId
    }

    /// Adds a directed arc. Zero weights are clamped to 1 to preserve the
    /// paper's positive-weight requirement.
    pub fn add_arc(&mut self, u: NodeId, v: NodeId, w: Weight) {
        self.arcs.push((u, v, w.max(1)));
    }

    /// Adds both arcs of an undirected road segment.
    pub fn add_undirected(&mut self, u: NodeId, v: NodeId, w: Weight) {
        self.add_arc(u, v, w);
        self.add_arc(v, u, w);
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.points.len()
    }

    /// Number of arcs added so far.
    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// Finishes the CSR arrays. Arcs are grouped by tail and sorted by
    /// `(head, weight)` within each group for deterministic iteration order
    /// (and hence deterministic canonical shortest-path trees).
    ///
    /// # Panics
    /// Panics if an arc references a missing node or is a self-loop
    /// (self-loops can never appear on a shortest path and would complicate
    /// border-node subdivision).
    pub fn build(mut self) -> RoadNetwork {
        let n = self.points.len();
        for &(u, v, _) in &self.arcs {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "arc references missing node"
            );
            assert_ne!(u, v, "self-loops are not allowed");
        }
        self.arcs.sort_unstable_by_key(|&(u, v, w)| (u, v, w));
        self.arcs.dedup();
        let mut offsets = vec![0u32; n + 1];
        for &(u, _, _) in &self.arcs {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let m = self.arcs.len();
        let mut heads = Vec::with_capacity(m);
        let mut weights = Vec::with_capacity(m);
        let mut tails = Vec::with_capacity(m);
        for &(u, v, w) in &self.arcs {
            tails.push(u);
            heads.push(v);
            weights.push(w);
        }
        RoadNetwork {
            points: self.points,
            offsets,
            heads,
            weights,
            tails,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> RoadNetwork {
        // 0 -> 1 -> 3, 0 -> 2 -> 3; cost via 1 is 3, via 2 is 4.
        let mut b = NetworkBuilder::new();
        for (x, y) in [(0, 0), (1, 1), (1, -1), (2, 0)] {
            b.add_node(Point::new(x, y));
        }
        b.add_arc(0, 1, 1);
        b.add_arc(1, 3, 2);
        b.add_arc(0, 2, 2);
        b.add_arc(2, 3, 2);
        b.build()
    }

    #[test]
    fn csr_layout() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_arcs(), 4);
        let arcs: Vec<_> = g.arcs_from(0).collect();
        assert_eq!(arcs.len(), 2);
        // sorted by head within the group
        assert_eq!(arcs[0].1, 1);
        assert_eq!(arcs[1].1, 2);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn edge_endpoints_match_iteration() {
        let g = diamond();
        for u in 0..g.num_nodes() as u32 {
            for (e, v, w) in g.arcs_from(u) {
                assert_eq!(g.edge_endpoints(e), (u, v));
                assert_eq!(g.edge_weight(e), w);
            }
        }
    }

    #[test]
    fn reverse_maps_edges() {
        let g = diamond();
        let (r, orig) = g.reversed();
        assert_eq!(r.num_arcs(), g.num_arcs());
        for e in 0..r.num_arcs() as u32 {
            let (t, h) = r.edge_endpoints(e);
            let (ot, oh) = g.edge_endpoints(orig[e as usize]);
            assert_eq!((t, h), (oh, ot));
            assert_eq!(r.edge_weight(e), g.edge_weight(orig[e as usize]));
        }
    }

    #[test]
    fn connectivity() {
        let g = diamond();
        assert!(!g.is_strongly_connected()); // no arcs back to 0
        let mut b = NetworkBuilder::new();
        b.add_node(Point::new(0, 0));
        b.add_node(Point::new(1, 0));
        b.add_undirected(0, 1, 5);
        assert!(b.build().is_strongly_connected());
    }

    #[test]
    fn bounding_box() {
        let g = diamond();
        let (min, max) = g.bounding_box().unwrap();
        assert_eq!(min, Point::new(0, -1));
        assert_eq!(max, Point::new(2, 1));
    }

    #[test]
    fn nearest_node_finds_closest() {
        let g = diamond();
        assert_eq!(g.nearest_node(Point::new(0, 0)), Some(0));
        assert_eq!(g.nearest_node(Point::new(2, 0)), Some(3));
        assert_eq!(g.nearest_node(Point::new(1, 1)), Some(1));
    }

    #[test]
    fn zero_weights_clamped() {
        let mut b = NetworkBuilder::new();
        b.add_node(Point::new(0, 0));
        b.add_node(Point::new(1, 0));
        b.add_arc(0, 1, 0);
        let g = b.build();
        assert_eq!(g.edge_weight(0), 1);
    }

    #[test]
    fn duplicate_arcs_deduped() {
        let mut b = NetworkBuilder::new();
        b.add_node(Point::new(0, 0));
        b.add_node(Point::new(1, 0));
        b.add_arc(0, 1, 3);
        b.add_arc(0, 1, 3);
        assert_eq!(b.build().num_arcs(), 1);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loops_rejected() {
        let mut b = NetworkBuilder::new();
        b.add_node(Point::new(0, 0));
        b.add_arc(0, 0, 1);
        b.build();
    }

    #[test]
    fn record_bytes() {
        let g = diamond();
        assert_eq!(g.node_record_bytes(0), 14 + 16); // degree 2
        assert_eq!(g.node_record_bytes(3), 14); // degree 0
        assert_eq!(g.max_node_record_bytes(), 30);
    }

    #[test]
    fn reweighted_jitters_symmetrically_within_bounds() {
        let mut b = NetworkBuilder::new();
        for i in 0..4 {
            b.add_node(Point::new(i, 0));
        }
        b.add_undirected(0, 1, 100);
        b.add_undirected(1, 2, 100);
        b.add_undirected(2, 3, 100);
        let g = b.build();
        let r = g.reweighted(7);
        assert_eq!(r.num_nodes(), g.num_nodes());
        assert_eq!(r.num_arcs(), g.num_arcs());
        let mut changed = false;
        for e in 0..g.num_arcs() as EdgeId {
            assert_eq!(r.edge_endpoints(e), g.edge_endpoints(e));
            let w = r.edge_weight(e);
            assert!((80..=120).contains(&w), "weight {w} out of the ±20% band");
            changed |= w != g.edge_weight(e);
            // the reverse direction of an undirected road keeps symmetry
            let (u, v) = g.edge_endpoints(e);
            let back = (0..g.num_arcs() as EdgeId)
                .find(|&f| g.edge_endpoints(f) == (v, u))
                .unwrap();
            assert_eq!(r.edge_weight(back), w, "asymmetric jitter on {u}-{v}");
        }
        assert!(changed, "seeded jitter should move at least one weight");
        // deterministic in the seed
        assert_eq!(
            (0..g.num_arcs() as EdgeId)
                .map(|e| g.reweighted(7).edge_weight(e))
                .collect::<Vec<_>>(),
            (0..g.num_arcs() as EdgeId)
                .map(|e| r.edge_weight(e))
                .collect::<Vec<_>>()
        );
        // weight-1 arcs stay legal
        let mut b = NetworkBuilder::new();
        b.add_node(Point::new(0, 0));
        b.add_node(Point::new(1, 0));
        b.add_arc(0, 1, 1);
        let tiny = b.build().reweighted(3);
        assert!(tiny.edge_weight(0) >= 1);
    }
}
