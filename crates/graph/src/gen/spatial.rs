//! Uniform-grid spatial index for nearest-neighbour queries during network
//! generation.

use crate::types::Point;

/// A bucketed uniform grid over a point set. Supports k-nearest-neighbour and
/// filtered nearest-neighbour queries via expanding ring search.
pub struct GridIndex<'a> {
    points: &'a [Point],
    min: Point,
    cell: i64,
    nx: usize,
    ny: usize,
    buckets: Vec<Vec<u32>>,
}

impl<'a> GridIndex<'a> {
    /// Builds an index targeting roughly `avg_per_cell` points per bucket.
    pub fn build(points: &'a [Point], avg_per_cell: usize) -> Self {
        assert!(!points.is_empty(), "cannot index an empty point set");
        let mut min = points[0];
        let mut max = points[0];
        for p in points {
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
        }
        let w = i64::from(max.x) - i64::from(min.x) + 1;
        let h = i64::from(max.y) - i64::from(min.y) + 1;
        let cells = (points.len() / avg_per_cell.max(1)).max(1);
        let cell = (((w as f64 * h as f64) / cells as f64).sqrt().ceil() as i64).max(1);
        let nx = ((w + cell - 1) / cell) as usize;
        let ny = ((h + cell - 1) / cell) as usize;
        let mut buckets = vec![Vec::new(); nx * ny];
        for (i, p) in points.iter().enumerate() {
            let cx = ((i64::from(p.x) - i64::from(min.x)) / cell) as usize;
            let cy = ((i64::from(p.y) - i64::from(min.y)) / cell) as usize;
            buckets[cy * nx + cx].push(i as u32);
        }
        GridIndex {
            points,
            min,
            cell,
            nx,
            ny,
            buckets,
        }
    }

    fn cell_of(&self, p: Point) -> (i64, i64) {
        (
            (i64::from(p.x) - i64::from(self.min.x)) / self.cell,
            (i64::from(p.y) - i64::from(self.min.y)) / self.cell,
        )
    }

    /// Visits buckets at Chebyshev ring `r` around cell `(cx, cy)`.
    fn ring_buckets(&self, cx: i64, cy: i64, r: i64, mut visit: impl FnMut(&[u32])) {
        let in_range =
            |x: i64, y: i64| x >= 0 && y >= 0 && (x as usize) < self.nx && (y as usize) < self.ny;
        if r == 0 {
            if in_range(cx, cy) {
                visit(&self.buckets[cy as usize * self.nx + cx as usize]);
            }
            return;
        }
        for x in (cx - r)..=(cx + r) {
            for &y in &[cy - r, cy + r] {
                if in_range(x, y) {
                    visit(&self.buckets[y as usize * self.nx + x as usize]);
                }
            }
        }
        for y in (cy - r + 1)..(cy + r) {
            for &x in &[cx - r, cx + r] {
                if in_range(x, y) {
                    visit(&self.buckets[y as usize * self.nx + x as usize]);
                }
            }
        }
    }

    /// The `k` nearest neighbours of point `i` (excluding `i` itself),
    /// ascending by distance, ties broken by id.
    pub fn knn(&self, i: u32, k: usize) -> Vec<u32> {
        let p = self.points[i as usize];
        let (cx, cy) = self.cell_of(p);
        let max_ring = (self.nx.max(self.ny)) as i64;
        let mut cand: Vec<(i128, u32)> = Vec::new();
        let mut r = 0i64;
        while r <= max_ring {
            self.ring_buckets(cx, cy, r, |bucket| {
                for &j in bucket {
                    if j != i {
                        cand.push((p.dist2(&self.points[j as usize]), j));
                    }
                }
            });
            if cand.len() >= k {
                // A point in ring r is at least (r-1)*cell away; once the kth
                // best is closer than that bound, further rings cannot help.
                cand.sort_unstable();
                cand.truncate(k.max(cand.len().min(4 * k)));
                let kth = cand[k.min(cand.len()) - 1].0;
                let bound = i128::from(r * self.cell) * i128::from(r * self.cell);
                if kth <= bound {
                    break;
                }
            }
            r += 1;
        }
        cand.sort_unstable();
        cand.truncate(k);
        cand.into_iter().map(|(_, j)| j).collect()
    }

    /// Nearest point satisfying `pred`, or `None` if no point does.
    pub fn nearest_matching(&self, from: Point, mut pred: impl FnMut(u32) -> bool) -> Option<u32> {
        let (cx, cy) = self.cell_of(from);
        let max_ring = (self.nx.max(self.ny)) as i64 + 1;
        let mut best: Option<(i128, u32)> = None;
        for r in 0..=max_ring {
            self.ring_buckets(cx, cy, r, |bucket| {
                for &j in bucket {
                    if pred(j) {
                        let d = from.dist2(&self.points[j as usize]);
                        if best.is_none() || (d, j) < best.unwrap() {
                            best = Some((d, j));
                        }
                    }
                }
            });
            if let Some((d, _)) = best {
                let bound = i128::from(r * self.cell) * i128::from(r * self.cell);
                if d <= bound {
                    break;
                }
            }
        }
        best.map(|(_, j)| j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cross_points() -> Vec<Point> {
        vec![
            Point::new(0, 0),
            Point::new(10, 0),
            Point::new(0, 10),
            Point::new(-10, 0),
            Point::new(0, -10),
            Point::new(100, 100),
        ]
    }

    #[test]
    fn knn_matches_brute_force() {
        let pts = cross_points();
        let idx = GridIndex::build(&pts, 2);
        for i in 0..pts.len() as u32 {
            let got = idx.knn(i, 3);
            let mut want: Vec<(i128, u32)> = (0..pts.len() as u32)
                .filter(|&j| j != i)
                .map(|j| (pts[i as usize].dist2(&pts[j as usize]), j))
                .collect();
            want.sort_unstable();
            let want: Vec<u32> = want.into_iter().take(3).map(|(_, j)| j).collect();
            assert_eq!(got, want, "knn of {i}");
        }
    }

    #[test]
    fn knn_on_random_points_matches_brute_force() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
        let pts: Vec<Point> = (0..400)
            .map(|_| Point::new(rng.gen_range(0..10_000), rng.gen_range(0..10_000)))
            .collect();
        let idx = GridIndex::build(&pts, 4);
        for i in (0..400u32).step_by(37) {
            let got = idx.knn(i, 6);
            let mut want: Vec<(i128, u32)> = (0..pts.len() as u32)
                .filter(|&j| j != i)
                .map(|j| (pts[i as usize].dist2(&pts[j as usize]), j))
                .collect();
            want.sort_unstable();
            let want: Vec<u32> = want.into_iter().take(6).map(|(_, j)| j).collect();
            assert_eq!(got, want, "knn of {i}");
        }
    }

    #[test]
    fn nearest_matching_respects_filter() {
        let pts = cross_points();
        let idx = GridIndex::build(&pts, 2);
        // nearest to origin that is not the origin cluster
        let j = idx.nearest_matching(Point::new(0, 0), |j| j == 5).unwrap();
        assert_eq!(j, 5);
        assert!(idx.nearest_matching(Point::new(0, 0), |_| false).is_none());
    }
}
