//! Jittered grid network generator — a simple, fully-regular alternative to
//! [`super::road_like`] used by unit tests that need predictable topology.

use crate::network::{NetworkBuilder, RoadNetwork};
use crate::types::Point;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`grid_network`].
#[derive(Debug, Clone)]
pub struct GridGenConfig {
    /// Columns.
    pub nx: usize,
    /// Rows.
    pub ny: usize,
    /// Distance between neighbouring grid points.
    pub spacing: i32,
    /// Maximum absolute coordinate jitter (must be < spacing/2 to keep points
    /// unique and the embedding planar-ish).
    pub jitter: i32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GridGenConfig {
    fn default() -> Self {
        GridGenConfig {
            nx: 10,
            ny: 10,
            spacing: 1000,
            jitter: 200,
            seed: 7,
        }
    }
}

/// Generates a 4-connected grid with jittered coordinates and Euclidean
/// weights. Always strongly connected.
pub fn grid_network(cfg: &GridGenConfig) -> RoadNetwork {
    assert!(cfg.nx >= 1 && cfg.ny >= 1, "grid must be non-empty");
    assert!(
        cfg.jitter * 2 < cfg.spacing || cfg.jitter == 0,
        "jitter would merge grid points"
    );
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut points = Vec::with_capacity(cfg.nx * cfg.ny);
    for y in 0..cfg.ny {
        for x in 0..cfg.nx {
            let jx = if cfg.jitter > 0 {
                rng.gen_range(-cfg.jitter..=cfg.jitter)
            } else {
                0
            };
            let jy = if cfg.jitter > 0 {
                rng.gen_range(-cfg.jitter..=cfg.jitter)
            } else {
                0
            };
            points.push(Point::new(
                x as i32 * cfg.spacing + jx,
                y as i32 * cfg.spacing + jy,
            ));
        }
    }
    let mut b = NetworkBuilder::new();
    for p in &points {
        b.add_node(*p);
    }
    let id = |x: usize, y: usize| (y * cfg.nx + x) as u32;
    let link = |b: &mut NetworkBuilder, u: u32, v: u32| {
        let w = points[u as usize]
            .dist(&points[v as usize])
            .round()
            .max(1.0) as u32;
        b.add_undirected(u, v, w);
    };
    for y in 0..cfg.ny {
        for x in 0..cfg.nx {
            if x + 1 < cfg.nx {
                link(&mut b, id(x, y), id(x + 1, y));
            }
            if y + 1 < cfg.ny {
                link(&mut b, id(x, y), id(x, y + 1));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_connected() {
        let g = grid_network(&GridGenConfig::default());
        assert_eq!(g.num_nodes(), 100);
        assert!(g.is_strongly_connected());
        // 2 * (nx-1)*ny + nx*(ny-1) arcs
        assert_eq!(g.num_arcs(), 2 * (9 * 10 + 10 * 9));
    }

    #[test]
    fn single_row() {
        let g = grid_network(&GridGenConfig {
            nx: 5,
            ny: 1,
            jitter: 0,
            ..Default::default()
        });
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_arcs(), 8);
        assert!(g.is_strongly_connected());
    }

    #[test]
    fn deterministic() {
        let cfg = GridGenConfig::default();
        let a = grid_network(&cfg);
        let b = grid_network(&cfg);
        assert_eq!(a.points(), b.points());
    }

    #[test]
    #[should_panic(expected = "jitter would merge")]
    fn oversized_jitter_rejected() {
        grid_network(&GridGenConfig {
            spacing: 10,
            jitter: 6,
            ..Default::default()
        });
    }
}
