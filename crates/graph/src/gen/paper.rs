//! Synthetic stand-ins for the paper's six evaluation networks (Table 1).

use super::road::{road_like, RoadGenConfig};
use crate::network::RoadNetwork;

/// The six road networks of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperNetwork {
    /// Oldenburg — 6,105 nodes / 7,029 edges (Brinkhoff generator data).
    Oldenburg,
    /// Germany — 28,867 nodes / 30,429 edges (Digital Chart of the World).
    Germany,
    /// Argentina — 85,287 nodes / 88,357 edges.
    Argentina,
    /// Denmark — 136,377 nodes / 143,612 edges.
    Denmark,
    /// India — 149,566 nodes / 155,483 edges.
    India,
    /// North America — 175,813 nodes / 179,179 edges.
    NorthAmerica,
}

/// All six networks in Table 1 order.
pub const ALL_PAPER_NETWORKS: [PaperNetwork; 6] = [
    PaperNetwork::Oldenburg,
    PaperNetwork::Germany,
    PaperNetwork::Argentina,
    PaperNetwork::Denmark,
    PaperNetwork::India,
    PaperNetwork::NorthAmerica,
];

impl PaperNetwork {
    /// Node count from Table 1.
    pub fn nodes(self) -> usize {
        match self {
            PaperNetwork::Oldenburg => 6_105,
            PaperNetwork::Germany => 28_867,
            PaperNetwork::Argentina => 85_287,
            PaperNetwork::Denmark => 136_377,
            PaperNetwork::India => 149_566,
            PaperNetwork::NorthAmerica => 175_813,
        }
    }

    /// (Undirected) edge count from Table 1.
    pub fn edges(self) -> usize {
        match self {
            PaperNetwork::Oldenburg => 7_029,
            PaperNetwork::Germany => 30_429,
            PaperNetwork::Argentina => 88_357,
            PaperNetwork::Denmark => 143_612,
            PaperNetwork::India => 155_483,
            PaperNetwork::NorthAmerica => 179_179,
        }
    }

    /// Short name used in the paper's charts ("Old.", "Ger.", ...).
    pub fn short_name(self) -> &'static str {
        match self {
            PaperNetwork::Oldenburg => "Old.",
            PaperNetwork::Germany => "Ger.",
            PaperNetwork::Argentina => "Arg.",
            PaperNetwork::Denmark => "Den.",
            PaperNetwork::India => "Ind.",
            PaperNetwork::NorthAmerica => "Nor.",
        }
    }

    /// Full dataset name.
    pub fn name(self) -> &'static str {
        match self {
            PaperNetwork::Oldenburg => "Oldenburg",
            PaperNetwork::Germany => "Germany",
            PaperNetwork::Argentina => "Argentina",
            PaperNetwork::Denmark => "Denmark",
            PaperNetwork::India => "India",
            PaperNetwork::NorthAmerica => "North America",
        }
    }
}

/// Generates the synthetic stand-in for `which`, scaled by `scale` ∈ (0, 1].
///
/// At `scale = 1.0` the node and edge counts match Table 1; smaller scales
/// shrink both proportionally so the full experiment suite fits a typical
/// development machine (the scale used for each recorded run is documented in
/// EXPERIMENTS.md).
pub fn paper_network(which: PaperNetwork, scale: f64) -> RoadNetwork {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let nodes = ((which.nodes() as f64 * scale).round() as usize).max(16);
    let ratio = which.edges() as f64 / which.nodes() as f64;
    road_like(&RoadGenConfig {
        nodes,
        extra_edge_frac: (ratio - 1.0).max(0.0),
        extent: 1_000_000,
        // Fixed per-dataset seed: every experiment sees the same "Argentina".
        seed: 0xC0FFEE ^ which.nodes() as u64,
        knn: 6,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_counts() {
        assert_eq!(PaperNetwork::Oldenburg.nodes(), 6_105);
        assert_eq!(PaperNetwork::NorthAmerica.edges(), 179_179);
        for n in ALL_PAPER_NETWORKS {
            assert!(n.edges() > n.nodes(), "{:?} should be super-tree sparse", n);
            assert!((n.edges() as f64 / n.nodes() as f64) < 1.2);
        }
    }

    #[test]
    fn scaled_generation_matches_ratio() {
        let net = paper_network(PaperNetwork::Oldenburg, 0.1);
        assert_eq!(net.num_nodes(), 611);
        assert!(net.is_strongly_connected());
        let ratio = (net.num_arcs() / 2) as f64 / net.num_nodes() as f64;
        let want = 7_029.0 / 6_105.0;
        assert!((ratio - want).abs() < 0.05, "ratio {ratio} vs {want}");
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(PaperNetwork::Argentina.short_name(), "Arg.");
        assert_eq!(PaperNetwork::NorthAmerica.name(), "North America");
    }

    #[test]
    #[should_panic(expected = "scale must be")]
    fn zero_scale_rejected() {
        paper_network(PaperNetwork::Oldenburg, 0.0);
    }
}
