//! Road-like network generator: Euclidean-MST skeleton plus short shortcuts.

use super::spatial::GridIndex;
use crate::network::{NetworkBuilder, RoadNetwork};
use crate::types::Point;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Configuration for [`road_like`].
#[derive(Debug, Clone)]
pub struct RoadGenConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Extra undirected edges beyond the spanning skeleton, as a fraction of
    /// `nodes`. Real road networks in Table 1 sit at 0.03–0.15.
    pub extra_edge_frac: f64,
    /// Side length of the square embedding area (coordinates are drawn from
    /// `[0, extent)`).
    pub extent: i32,
    /// RNG seed — the generator is fully deterministic given the seed.
    pub seed: u64,
    /// Neighbours considered per node when building the candidate edge set.
    pub knn: usize,
}

impl Default for RoadGenConfig {
    fn default() -> Self {
        RoadGenConfig {
            nodes: 1000,
            extra_edge_frac: 0.12,
            extent: 1_000_000,
            seed: 42,
            knn: 6,
        }
    }
}

struct Dsu {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.components -= 1;
        true
    }
}

/// Generates a connected road-like network: unique random points, a spanning
/// skeleton built from the k-NN candidate graph (Kruskal), plus the shortest
/// unused candidate edges until the target edge count is reached. Every
/// undirected segment is stored as two arcs with weight = rounded Euclidean
/// length.
pub fn road_like(cfg: &RoadGenConfig) -> RoadNetwork {
    assert!(cfg.nodes >= 2, "need at least two nodes");
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    // Unique points: duplicates would create zero-length edges and ambiguous
    // KD-tree splits.
    let mut seen = HashSet::with_capacity(cfg.nodes * 2);
    let mut points = Vec::with_capacity(cfg.nodes);
    while points.len() < cfg.nodes {
        let p = Point::new(rng.gen_range(0..cfg.extent), rng.gen_range(0..cfg.extent));
        if seen.insert((p.x, p.y)) {
            points.push(p);
        }
    }

    // Candidate edges from k nearest neighbours.
    let idx = GridIndex::build(&points, 4);
    let mut cand: Vec<(i128, u32, u32)> = Vec::with_capacity(cfg.nodes * cfg.knn);
    for i in 0..cfg.nodes as u32 {
        for j in idx.knn(i, cfg.knn) {
            let (a, b) = if i < j { (i, j) } else { (j, i) };
            cand.push((points[a as usize].dist2(&points[b as usize]), a, b));
        }
    }
    cand.sort_unstable();
    cand.dedup();

    // Kruskal over the candidates.
    let mut dsu = Dsu::new(cfg.nodes);
    let mut skeleton: Vec<(u32, u32)> = Vec::with_capacity(cfg.nodes);
    let mut leftovers: Vec<(i128, u32, u32)> = Vec::new();
    for (d, a, b) in cand {
        if dsu.union(a, b) {
            skeleton.push((a, b));
        } else {
            leftovers.push((d, a, b));
        }
    }

    // The k-NN graph can (rarely) be disconnected; stitch remaining
    // components through their spatially nearest cross-component pairs.
    while dsu.components > 1 {
        let root0 = dsu.find(0);
        // Any node outside root0's component:
        let outsider = (0..cfg.nodes as u32)
            .find(|&u| dsu.find(u) != root0)
            .expect("components > 1");
        let comp = dsu.find(outsider);
        let mut best: Option<(i128, u32, u32)> = None;
        for u in 0..cfg.nodes as u32 {
            if dsu.find(u) != comp {
                continue;
            }
            if let Some(v) = idx.nearest_matching(points[u as usize], |j| dsu.find(j) != comp) {
                let d = points[u as usize].dist2(&points[v as usize]);
                if best.is_none() || d < best.unwrap().0 {
                    best = Some((d, u, v));
                }
            }
        }
        let (_, u, v) = best.expect("another component must exist");
        dsu.union(u, v);
        skeleton.push((u.min(v), u.max(v)));
    }

    // Shortcuts: shortest unused candidates first, mirroring how real road
    // networks add local redundancy.
    let target_edges = (cfg.nodes as f64 * (1.0 + cfg.extra_edge_frac)).round() as usize;
    let mut edges: HashSet<(u32, u32)> = skeleton.iter().copied().collect();
    for (_, a, b) in leftovers {
        if edges.len() >= target_edges {
            break;
        }
        edges.insert((a, b));
    }

    let mut b = NetworkBuilder::new();
    for p in &points {
        b.add_node(*p);
    }
    let mut sorted: Vec<(u32, u32)> = edges.into_iter().collect();
    sorted.sort_unstable();
    for (u, v) in sorted {
        let w = points[u as usize]
            .dist(&points[v as usize])
            .round()
            .max(1.0) as u32;
        b.add_undirected(u, v, w);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_connected_network() {
        let net = road_like(&RoadGenConfig {
            nodes: 500,
            seed: 1,
            ..Default::default()
        });
        assert_eq!(net.num_nodes(), 500);
        assert!(net.is_strongly_connected());
    }

    #[test]
    fn edge_count_matches_target() {
        let cfg = RoadGenConfig {
            nodes: 800,
            extra_edge_frac: 0.15,
            seed: 2,
            ..Default::default()
        };
        let net = road_like(&cfg);
        let undirected = net.num_arcs() / 2;
        let target = (800.0 * 1.15) as usize;
        // MST constraint and candidate exhaustion allow small deviations.
        assert!(
            (undirected as i64 - target as i64).abs() <= target as i64 / 20,
            "got {undirected} undirected edges, wanted ~{target}"
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let cfg = RoadGenConfig {
            nodes: 300,
            seed: 9,
            ..Default::default()
        };
        let a = road_like(&cfg);
        let b = road_like(&cfg);
        assert_eq!(a.num_arcs(), b.num_arcs());
        assert_eq!(a.points(), b.points());
        for e in 0..a.num_arcs() as u32 {
            assert_eq!(a.edge_endpoints(e), b.edge_endpoints(e));
            assert_eq!(a.edge_weight(e), b.edge_weight(e));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = road_like(&RoadGenConfig {
            nodes: 300,
            seed: 1,
            ..Default::default()
        });
        let b = road_like(&RoadGenConfig {
            nodes: 300,
            seed: 2,
            ..Default::default()
        });
        assert_ne!(a.points(), b.points());
    }

    #[test]
    fn weights_are_euclidean() {
        let net = road_like(&RoadGenConfig {
            nodes: 200,
            seed: 3,
            ..Default::default()
        });
        for e in 0..net.num_arcs() as u32 {
            let (u, v) = net.edge_endpoints(e);
            let d = net.node_point(u).dist(&net.node_point(v)).round().max(1.0) as u32;
            assert_eq!(net.edge_weight(e), d);
        }
    }

    #[test]
    fn points_are_unique() {
        let net = road_like(&RoadGenConfig {
            nodes: 400,
            seed: 4,
            ..Default::default()
        });
        let mut set = HashSet::new();
        for p in net.points() {
            assert!(set.insert((p.x, p.y)), "duplicate point {p:?}");
        }
    }

    #[test]
    fn dsu_unions_correctly() {
        let mut d = Dsu::new(4);
        assert_eq!(d.components, 4);
        assert!(d.union(0, 1));
        assert!(!d.union(1, 0));
        assert!(d.union(2, 3));
        assert!(d.union(0, 3));
        assert_eq!(d.components, 1);
        assert_eq!(d.find(1), d.find(2));
    }
}
