//! Synthetic road-network generators.
//!
//! The paper evaluates on six real road networks (Table 1: Oldenburg,
//! Germany, Argentina, Denmark, India, North America). Those datasets are not
//! redistributable here, so we generate *road-like* networks with the same
//! node and edge counts: spatial points connected by a Euclidean
//! minimum-spanning-tree skeleton plus short shortcut edges, which reproduces
//! the extreme sparsity (edge/node ratio ≈ 1.03–1.15) and strong spatial
//! locality of real road graphs — the two properties every measured quantity
//! in the paper depends on (page counts, region-set sizes, search effort).
//!
//! See DESIGN.md §2 for the substitution rationale. Real datasets can be
//! loaded through [`crate::io`] instead.

mod grid;
mod paper;
mod road;
mod spatial;

pub use grid::{grid_network, GridGenConfig};
pub use paper::{paper_network, PaperNetwork, ALL_PAPER_NETWORKS};
pub use road::{road_like, RoadGenConfig};
pub use spatial::GridIndex;
